(* Tests for the FMR-style O(log² n) baseline: completeness, size shape,
   and the consistency checks it does perform. *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module T = Lcp_graph.Traversal
module Rep = Lcp_interval.Representation
module PW = Lcp_interval.Pathwidth
module PLS = Lcp_pls
module S = PLS.Scheme
module A = Lcp_algebra

module Fconn = Lcp_cert.Baseline_fmr.Make (A.Connectivity)
module Facy = Lcp_cert.Baseline_fmr.Make (A.Acyclicity)
module Fbip = Lcp_cert.Baseline_fmr.Make (A.Bipartite)

let rng = rng_of_seed 555

let completeness_on_families () =
  List.iter
    (fun (name, g) ->
      if T.is_connected g && G.n g <= 14 then begin
        let cfg = PLS.Config.random_ids rng g in
        let k = max 1 (PW.exact g) in
        let scheme = Fconn.scheme ~k () in
        match scheme.S.vs_prove cfg with
        | None -> Alcotest.fail (name ^ ": baseline prover declined")
        | Some labels ->
            check (name ^ " accepts") true
              (S.accepted (S.run_vertex cfg scheme labels))
      end)
    named_families

let prop_completeness =
  qcheck ~count:60 "fmr completeness on random graphs"
    (arb_pw_graph ~max_k:3 ~max_n:60)
    (fun (k, g, ivs) ->
      let rep = rep_of (g, ivs) in
      let cfg = PLS.Config.random_ids rng g in
      let scheme = Fconn.scheme ~rep:(fun _ -> Some rep) ~k () in
      match scheme.S.vs_prove cfg with
      | None -> false
      | Some labels -> S.accepted (S.run_vertex cfg scheme labels))

let prover_declines_false () =
  let cfg = PLS.Config.random_ids rng (Gen.cycle 9) in
  check "acyclicity on cycle declined" true
    ((Facy.scheme ~k:2 ()).S.vs_prove cfg = None);
  let cfg5 = PLS.Config.random_ids rng (Gen.cycle 5) in
  check "bipartite on C5 declined" true
    ((Fbip.scheme ~k:2 ()).S.vs_prove cfg5 = None)

let label_shape_loglog () =
  (* FMR label sizes grow faster than Theorem 1's: roughly log² n. On
     paths, doubling n adds about one level of ~log n bits. *)
  let bits n =
    let g = Gen.path n in
    let cfg = PLS.Config.make g in
    let scheme =
      Fconn.scheme
        ~rep:(fun c ->
          Some (PW.heuristic_interval_representation (PLS.Config.graph c)))
        ~k:1 ()
    in
    let labels = Option.get (scheme.S.vs_prove cfg) in
    S.max_vertex_label_bits scheme labels
  in
  let b32 = bits 32 and b64 = bits 64 and b128 = bits 128 in
  check "monotone" true (b32 < b64 && b64 < b128);
  (* each doubling adds at least one more level *)
  check "superlogarithmic" true (b128 - b64 > 0 && b64 - b32 > 0)

let mutation_detected () =
  let g, ivs = Gen.random_pathwidth rng ~n:20 ~k:2 () in
  let rep = rep_of (g, ivs) in
  let cfg = PLS.Config.random_ids rng g in
  let scheme = Fconn.scheme ~rep:(fun _ -> Some rep) ~k:2 () in
  let labels = Option.get (scheme.S.vs_prove cfg) in
  (* flip the accept bit of one vertex *)
  let bad = Array.copy labels in
  bad.(3) <- { bad.(3) with Fconn.accepted = false };
  check "accept flip caught" false
    (S.accepted (S.run_vertex cfg scheme bad));
  (* corrupt one vertex's position *)
  let bad2 = Array.copy labels in
  bad2.(4) <- { bad2.(4) with Fconn.pos = bad2.(4).Fconn.pos + 1 };
  check "position corruption caught" false
    (S.accepted (S.run_vertex cfg scheme bad2))

let single_vertex () =
  let cfg = PLS.Config.make (Gen.path 1) in
  let scheme = Fconn.scheme ~k:1 () in
  let labels = Option.get (scheme.S.vs_prove cfg) in
  check "singleton accepts" true (S.accepted (S.run_vertex cfg scheme labels))

let suite =
  ( "fmr_baseline",
    [
      test "completeness on named families" completeness_on_families;
      prop_completeness;
      test "prover declines false instances" prover_declines_false;
      slow_test "label shape is superlogarithmic" label_shape_loglog;
      test "mutations detected" mutation_detected;
      test "single vertex" single_vertex;
    ] )

(* Soundness battery for the Theorem 1 scheme: no adversarial labeling may
   make every vertex accept a false instance, and structural corruptions of
   honest certificates must be detected somewhere. *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Rep = Lcp_interval.Representation
module PLS = Lcp_pls
module S = PLS.Scheme
module EM = S.Edge_map
module A = Lcp_algebra
module Cert = Lcp_cert.Certificate
module ST = PLS.Spanning_tree

module T1conn = Lcp_cert.Theorem1.Make (A.Connectivity)
module T1acy = Lcp_cert.Theorem1.Make (A.Acyclicity)
module T1path = Lcp_cert.Theorem1.Make (A.Combinators.Is_path_graph)
module T1bip = Lcp_cert.Theorem1.Make (A.Bipartite)

let rng = rng_of_seed 424242

(* The strongest generic adversary we can simulate: run the honest
   pipeline on a FALSE instance (structure certificates are then all
   consistent) and forge only the acceptance claim. *)
let forge_path_claim g =
  let cfg = PLS.Config.random_ids rng g in
  match T1path.P.prepare cfg with
  | Error m -> Alcotest.fail ("prepare failed: " ^ m)
  | Ok art ->
      let forged =
        EM.map
          (fun l -> { l with Cert.accept_state = true })
          art.T1path.P.labels
      in
      S.accepted (S.run_edge cfg (T1path.edge_scheme ~k:2 ()) forged)

let forge_acyclic_claim ~k g =
  let cfg = PLS.Config.random_ids rng g in
  match T1acy.P.prepare cfg with
  | Error m -> Alcotest.fail ("prepare failed: " ^ m)
  | Ok art ->
      let forged =
        EM.map
          (fun l -> { l with Cert.accept_state = true })
          art.T1acy.P.labels
      in
      S.accepted (S.run_edge cfg (T1acy.edge_scheme ~k ()) forged)

let forge_bipartite_claim g =
  let cfg = PLS.Config.random_ids rng g in
  match T1bip.P.prepare cfg with
  | Error m -> Alcotest.fail ("prepare failed: " ^ m)
  | Ok art ->
      let forged =
        EM.map
          (fun l -> { l with Cert.accept_state = true })
          art.T1bip.P.labels
      in
      S.accepted (S.run_edge cfg (T1bip.edge_scheme ~k:2 ()) forged)

let paths_vs_cycles () =
  (* the paper's canonical lower-bound pair: accepting paths, rejecting
     cycles; forged cycles must be rejected at every size *)
  for n = 3 to 24 do
    check
      (Printf.sprintf "C%d rejected as path" n)
      false
      (forge_path_claim (Gen.cycle n))
  done;
  (* and paths accepted (the other side of the pair) *)
  for n = 2 to 24 do
    let g = Gen.path n in
    let cfg = PLS.Config.random_ids rng g in
    let scheme = T1path.edge_scheme ~k:1 () in
    let labels = Option.get (scheme.S.es_prove cfg) in
    check
      (Printf.sprintf "P%d accepted" n)
      true
      (S.accepted (S.run_edge cfg scheme labels))
  done

let forged_claims_rejected () =
  check "cycle as acyclic" false (forge_acyclic_claim ~k:2 (Gen.cycle 11));
  check "odd cycle as bipartite" false (forge_bipartite_claim (Gen.cycle 9));
  check "K4 as acyclic" false (forge_acyclic_claim ~k:3 (Gen.complete 4))

(* mutate honest certificates; count silent acceptances (must be zero) *)
let mutation_battery () =
  let silent = ref [] in
  let trials = ref 0 in
  for round = 0 to 14 do
    let k = 1 + (round mod 2) in
    let n = 5 + Random.State.int rng 25 in
    let g, ivs = Gen.random_pathwidth rng ~n ~k () in
    let cfg = PLS.Config.random_ids rng g in
    let rep = Rep.of_pairs g ivs in
    let scheme = T1conn.edge_scheme ~rep:(fun _ -> Some rep) ~k () in
    match scheme.S.es_prove cfg with
    | None -> ()
    | Some labels ->
        let edges = List.map fst (EM.bindings labels) in
        let pick () = List.nth edges (Random.State.int rng (List.length edges)) in
        let try_mutation name forged =
          incr trials;
          if S.accepted (S.run_edge cfg scheme forged) then
            silent := name :: !silent
        in
        (* swap frame stacks between two edges *)
        let e1 = pick () and e2 = pick () in
        let l1 = Option.get (EM.find labels e1) in
        let l2 = Option.get (EM.find labels e2) in
        if e1 <> e2 && l1.Cert.frames <> l2.Cert.frames then
          try_mutation "stack swap"
            (EM.add
               (EM.add labels e1 { l1 with Cert.frames = l2.Cert.frames })
               e2
               { l2 with Cert.frames = l1.Cert.frames });
        (* drop the transported records of one edge *)
        let e = pick () in
        let l = Option.get (EM.find labels e) in
        if l.Cert.transported <> [] then
          try_mutation "transport drop"
            (EM.add labels e { l with Cert.transported = [] });
        (* shift a transported rank *)
        let e = pick () in
        let l = Option.get (EM.find labels e) in
        (match l.Cert.transported with
        | r :: rest ->
            try_mutation "rank shift"
              (EM.add labels e
                 {
                   l with
                   Cert.transported =
                     { r with Cert.rank_fwd = r.Cert.rank_fwd + 1 } :: rest;
                 })
        | [] -> ());
        (* retarget the global pointer on one edge *)
        let e = pick () in
        let l = Option.get (EM.find labels e) in
        try_mutation "pointer retarget"
          (EM.add labels e
             {
               l with
               Cert.global_ptr =
                 {
                   l.Cert.global_ptr with
                   ST.target = l.Cert.global_ptr.ST.target + 1;
                 };
             });
        (* truncate a frame stack *)
        let e = pick () in
        let l = Option.get (EM.find labels e) in
        (match l.Cert.frames with
        | _ :: (_ :: _ as rest) ->
            try_mutation "stack truncation"
              (EM.add labels e { l with Cert.frames = rest })
        | _ -> ())
  done;
  check
    (Printf.sprintf "%d mutations, silent: %s" !trials
       (String.concat "," !silent))
    true (!silent = []);
  check "enough mutations exercised" true (!trials > 30)

(* single-bit corruption of the actual encoded labels: every flip must
   break decoding or be rejected by some vertex *)
let bit_flip_battery () =
  let module B = Lcp_util.Bitenc in
  let decode_fail = ref 0 and rejected = ref 0 and accepted = ref 0 in
  for _ = 1 to 20 do
    let k = 1 + Random.State.int rng 2 in
    let n = 6 + Random.State.int rng 25 in
    let g, ivs = Gen.random_pathwidth rng ~n ~k () in
    let cfg = PLS.Config.random_ids rng g in
    let rep = Rep.of_pairs g ivs in
    let scheme = T1conn.edge_scheme ~rep:(fun _ -> Some rep) ~k () in
    match scheme.S.es_prove cfg with
    | None -> ()
    | Some labels ->
        let edges = List.map fst (EM.bindings labels) in
        for _ = 1 to 5 do
          let e = List.nth edges (Random.State.int rng (List.length edges)) in
          let l = Option.get (EM.find labels e) in
          let w = B.writer () in
          Cert.encode ~encode_state:A.Connectivity.encode w l;
          let bits = B.length_bits w in
          let bytes = B.to_bytes w in
          let pos = Random.State.int rng bits in
          Bytes.set bytes (pos / 8)
            (Char.chr
               (Char.code (Bytes.get bytes (pos / 8)) lxor (1 lsl (pos mod 8))));
          match
            try
              Some
                (Cert.decode ~decode_state:A.Connectivity.decode (B.reader bytes))
            with _ -> None
          with
          | None -> incr decode_fail
          | Some l' when l' = l -> ()
          | Some l' -> (
              let forged = EM.add labels e l' in
              match S.run_edge cfg scheme forged with
              | S.Accepted -> incr accepted
              | S.Rejected _ -> incr rejected)
        done
  done;
  check
    (Printf.sprintf "bit flips: %d decode failures, %d rejected, %d accepted"
       !decode_fail !rejected !accepted)
    true (!accepted = 0);
  check "flips exercised" true (!decode_fail + !rejected > 50)

(* replaying the certificate of a DIFFERENT graph must fail: steal the
   labeling of a path of the same size for a cycle *)
let cross_instance_replay () =
  let n = 12 in
  let cycle = Gen.cycle n in
  let path = Gen.path n in
  let ids = Array.init n (fun v -> v + 100) in
  let cfg_path = PLS.Config.make ~ids path in
  let cfg_cycle = PLS.Config.make ~ids cycle in
  let scheme = T1path.edge_scheme ~k:2 () in
  let path_labels =
    Option.get ((T1path.edge_scheme ~k:2 ()).S.es_prove cfg_path)
  in
  (* reuse path labels on the cycle's edges: the extra closing edge gets a
     copy of an arbitrary label *)
  let any_label = snd (List.hd (EM.bindings path_labels)) in
  let forged =
    G.fold_edges
      (fun e m ->
        let l =
          match EM.find path_labels e with Some l -> l | None -> any_label
        in
        EM.add m e l)
      cycle EM.empty
  in
  check "replayed path certificate rejected on cycle" false
    (S.accepted (S.run_edge cfg_cycle scheme forged))

let all_rejections_have_reasons () =
  let g = Gen.cycle 7 in
  let cfg = PLS.Config.random_ids rng g in
  match T1path.P.prepare cfg with
  | Error _ -> Alcotest.fail "prepare failed"
  | Ok art ->
      let forged =
        EM.map (fun l -> { l with Cert.accept_state = true }) art.T1path.P.labels
      in
      (match S.run_edge cfg (T1path.edge_scheme ~k:2 ()) forged with
      | S.Accepted -> Alcotest.fail "should reject"
      | S.Rejected rs ->
          check "nonempty reasons" true
            (List.for_all (fun (_, r) -> String.length r > 0) rs))

let suite =
  ( "soundness",
    [
      slow_test "paths accepted, cycles rejected" paths_vs_cycles;
      test "forged acceptance claims rejected" forged_claims_rejected;
      slow_test "mutation battery" mutation_battery;
      slow_test "bit-flip battery" bit_flip_battery;
      test "cross-instance replay rejected" cross_instance_replay;
      test "rejections carry reasons" all_rejections_have_reasons;
    ] )

(* Tests for §5: k-lane graphs, merges, traces (Def 5.1), Prop 5.2 both
   directions, hierarchical decompositions (Obs 5.5), and the Prop 5.6
   builder. *)

open Test_util
module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Rep = Lcp_interval.Representation
module LP = Lcp_lanes.Lane_partition
module Cmp = Lcp_lanes.Completion
module LC = Lcp_lanes.Low_congestion
module K = Lcp_lanewidth.Klane
module M = Lcp_lanewidth.Merge
module Tr = Lcp_lanewidth.Trace
module P52 = Lcp_lanewidth.Prop52
module H = Lcp_lanewidth.Hierarchy
module Bld = Lcp_lanewidth.Builder

let host = Gen.grid 3 3

let klane_validation () =
  let ok =
    K.make ~host ~vertices:[ 0; 1; 2 ]
      ~edges:[ (0, 1); (1, 2) ]
      ~lane_in:[ (0, 0) ] ~lane_out:[ (0, 2) ]
  in
  check "lanes" true (K.lanes ok = [ 0 ]);
  check_int "tau_in" 0 (K.tau_in ok 0);
  check_int "tau_out" 2 (K.tau_out ok 0);
  check "connected" true (K.is_connected ok);
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "edge outside host" true
    (raises (fun () ->
         ignore
           (K.make ~host ~vertices:[ 0; 4 ] ~edges:[ (0, 4) ]
              ~lane_in:[ (0, 0) ] ~lane_out:[ (0, 4) ])));
  check "terminal outside vertices" true
    (raises (fun () ->
         ignore
           (K.make ~host ~vertices:[ 0 ] ~edges:[] ~lane_in:[ (0, 1) ]
              ~lane_out:[ (0, 1) ])));
  check "non-injective terminals" true
    (raises (fun () ->
         ignore
           (K.make ~host ~vertices:[ 0; 1 ] ~edges:[ (0, 1) ]
              ~lane_in:[ (0, 0); (1, 0) ]
              ~lane_out:[ (0, 1); (1, 0) ])));
  check "empty lane set" true
    (raises (fun () ->
         ignore (K.make ~host ~vertices:[ 0 ] ~edges:[] ~lane_in:[] ~lane_out:[])))

let klane_builders () =
  let v = K.singleton ~host ~lane:2 5 in
  check "singleton" true (K.tau_in v 2 = 5 && K.tau_out v 2 = 5);
  let e = K.single_edge ~host ~lane:0 ~t_in:0 ~t_out:1 in
  check "single edge" true (e.K.edges = [ (0, 1) ]);
  let p = K.of_path ~host [ 0; 1; 2 ] in
  check "path lanes" true (K.lanes p = [ 0; 1; 2 ]);
  check "path terminals" true (K.tau_in p 1 = 1 && K.tau_out p 1 = 1)

let bridge_merge () =
  (* grid edge 1-2 bridges two singletons *)
  let a = K.singleton ~host ~lane:0 1 and b = K.singleton ~host ~lane:1 2 in
  let m = M.bridge_merge a b ~i:0 ~j:1 in
  check "lanes" true (K.lanes m = [ 0; 1 ]);
  check "edges" true (m.K.edges = [ (1, 2) ]);
  check "terminals" true (K.tau_out m 0 = 1 && K.tau_out m 1 = 2);
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "no host edge" true
    (raises (fun () ->
         ignore
           (M.bridge_merge (K.singleton ~host ~lane:0 0)
              (K.singleton ~host ~lane:1 8)
              ~i:0 ~j:1)));
  check "overlapping lanes" true
    (raises (fun () ->
         ignore
           (M.bridge_merge (K.singleton ~host ~lane:0 1)
              (K.singleton ~host ~lane:0 2)
              ~i:0 ~j:0)));
  check "shared vertex" true
    (raises (fun () ->
         ignore
           (M.bridge_merge (K.singleton ~host ~lane:0 1)
              (K.singleton ~host ~lane:1 1)
              ~i:0 ~j:1)))

let parent_merge () =
  (* parent path 0-1 (lane 0: out 1); child edge 1-2 extending the lane *)
  let parent =
    K.make ~host ~vertices:[ 0; 1 ] ~edges:[ (0, 1) ] ~lane_in:[ (0, 0) ]
      ~lane_out:[ (0, 1) ]
  in
  let child = K.single_edge ~host ~lane:0 ~t_in:1 ~t_out:2 in
  let m = M.parent_merge ~child ~parent in
  check "vertices" true (m.K.vertices = [ 0; 1; 2 ]);
  check "in from parent" true (K.tau_in m 0 = 0);
  check "out from child" true (K.tau_out m 0 = 2);
  let raises f = try f (); false with Invalid_argument _ -> true in
  check "terminal mismatch" true
    (raises (fun () ->
         ignore
           (M.parent_merge
              ~child:(K.single_edge ~host ~lane:0 ~t_in:2 ~t_out:5)
              ~parent)));
  check "edge overlap" true
    (raises (fun () ->
         ignore
           (M.parent_merge
              ~child:
                (K.make ~host ~vertices:[ 0; 1 ] ~edges:[ (0, 1) ]
                   ~lane_in:[ (0, 1) ] ~lane_out:[ (0, 0) ])
              ~parent)))

let tree_merge_assoc () =
  (* a path grown by two children in one Tree-merge *)
  let p = K.of_path ~host [ 0; 1 ] in
  let c0 = K.single_edge ~host ~lane:0 ~t_in:0 ~t_out:3 in
  let c1 = K.single_edge ~host ~lane:1 ~t_in:1 ~t_out:2 in
  let t =
    M.tree_merge
      { M.piece = p; children = [ { M.piece = c0; children = [] };
                                  { M.piece = c1; children = [] } ] }
  in
  check "vertices" true (t.K.vertices = [ 0; 1; 2; 3 ]);
  check "out0" true (K.tau_out t 0 = 3);
  check "out1" true (K.tau_out t 1 = 2);
  (* sibling lane overlap rejected *)
  let c1' = K.single_edge ~host ~lane:0 ~t_in:1 ~t_out:2 in
  check "sibling overlap" true
    (try
       ignore
         (M.tree_merge
            { M.piece = p; children = [ { M.piece = c0; children = [] };
                                        { M.piece = c1'; children = [] } ] });
       false
     with Invalid_argument _ -> true)

let trace_eval () =
  (* the Fig 7 style example: path of 2, grow lane 0 twice, close a cycle *)
  let tr =
    { Tr.k = 2; ops = [ Tr.V_insert 0; Tr.V_insert 0; Tr.E_insert (0, 1) ] }
  in
  check "valid" true (Tr.validate tr = Ok ());
  let g = Tr.eval tr in
  check_int "n" 4 (G.n g);
  check_int "m" 4 (G.m g);
  check "is C4" true (G.is_isomorphic g (Gen.cycle 4));
  Alcotest.(check (array int)) "final designated" [| 3; 1 |] (Tr.final_designated tr);
  Alcotest.(check (array int)) "lanes" [| 0; 1; 0; 0 |] (Tr.lane_assignment tr)

let trace_validation () =
  check "duplicate edge rejected" true
    (Tr.validate { Tr.k = 2; ops = [ Tr.E_insert (0, 1) ] } <> Ok ());
  check "equal lanes rejected" true
    (Tr.validate { Tr.k = 2; ops = [ Tr.E_insert (1, 1) ] } <> Ok ());
  check "lane out of range" true
    (Tr.validate { Tr.k = 2; ops = [ Tr.V_insert 5 ] } <> Ok ());
  check "fresh edge ok" true
    (Tr.validate { Tr.k = 2; ops = [ Tr.V_insert 0; Tr.E_insert (0, 1) ] } = Ok ())

let designated_history () =
  let tr = { Tr.k = 1; ops = [ Tr.V_insert 0; Tr.V_insert 0 ] } in
  check "history" true
    (Tr.designated_history tr = [ (0, 0, 0); (1, 1, 1); (2, 2, 2) ])

let prop52_trace_to_completion =
  qcheck ~count:150 "Prop 5.2: trace -> completion"
    (arb_trace ~max_k:5 ~max_ops:40)
    (fun tr ->
      let _, part = P52.completion_of_trace tr in
      G.equal (Cmp.completion part) (Tr.eval tr))

let prop52_roundtrip =
  qcheck ~count:100 "Prop 5.2: partition -> trace -> completion"
    (arb_pw_graph ~max_k:3 ~max_n:40)
    (fun (_, g, ivs) ->
      let rep = rep_of (g, ivs) in
      let r = LC.construct rep in
      P52.check_roundtrip r.LC.partition)

let builder_on_traces =
  qcheck ~count:150 "Prop 5.6: hierarchy from trace"
    (arb_trace ~max_k:5 ~max_ops:40)
    (fun tr ->
      let h = Bld.of_trace tr in
      let g = Tr.eval tr in
      H.validate h = Ok ()
      && H.depth h <= 2 * tr.Tr.k
      && H.edge_congestion h <= 2 * tr.Tr.k
      && G.equal (G.of_edges ~n:(G.n g) (H.klane_of h).K.edges) g
      && H.fold (fun acc n -> acc && K.is_connected (H.klane_of n)) true h)

let builder_full_pipeline =
  qcheck ~count:60 "full pipeline hierarchy over completions"
    (arb_pw_graph ~max_k:3 ~max_n:40)
    (fun (_, g, ivs) ->
      let rep = rep_of (g, ivs) in
      let r = LC.construct rep in
      let part = r.LC.partition in
      let tr, to_host = P52.trace_of_partition part in
      let host = Cmp.completion part in
      let h = Bld.of_trace_on ~host ~to_host tr in
      let kk = LP.lane_count part in
      H.validate h = Ok ()
      && H.depth h <= 2 * kk
      && G.equal (G.of_edges ~n:(G.n host) (H.klane_of h).K.edges) host)

let hierarchy_structure () =
  let tr =
    { Tr.k = 2; ops = [ Tr.V_insert 0; Tr.V_insert 1; Tr.E_insert (0, 1) ] }
  in
  let h = Bld.of_trace tr in
  check "validates" true (H.validate h = Ok ());
  check "root is T-node" true (match h with H.T_node _ -> true | _ -> false);
  check "max lane" true (H.max_lane h = 1);
  check "node count" true (H.node_count h >= 4);
  (* summary printing smoke test *)
  let s = Format.asprintf "%a" H.pp_summary h in
  check "summary mentions depth" true
    (String.length s > 0 && String.sub s 0 9 = "hierarchy")

let validate_catches_corruption () =
  let tr =
    { Tr.k = 2; ops = [ Tr.V_insert 0; Tr.V_insert 1; Tr.E_insert (0, 1) ] }
  in
  match Bld.of_trace tr with
  | H.T_node { t_result; tree } ->
      (* corrupt: claim a different result k-lane graph *)
      let host = Tr.eval tr in
      let fake = K.singleton ~host ~lane:0 0 in
      check "corrupt result caught" true
        (H.validate (H.T_node { t_result = fake; tree }) <> Ok ());
      ignore t_result
  | _ -> Alcotest.fail "expected T-node"

let suite =
  ( "lanewidth",
    [
      test "klane validation" klane_validation;
      test "klane builders" klane_builders;
      test "bridge merge (Fig 8)" bridge_merge;
      test "parent merge (Fig 8)" parent_merge;
      test "tree merge (Fig 9)" tree_merge_assoc;
      test "trace evaluation (Def 5.1)" trace_eval;
      test "trace validation" trace_validation;
      test "designated history" designated_history;
      prop52_trace_to_completion;
      prop52_roundtrip;
      builder_on_traces;
      builder_full_pipeline;
      test "hierarchy structure" hierarchy_structure;
      test "validation catches corruption" validate_catches_corruption;
    ] )

(** Graph generators.

    Deterministic families used throughout the paper (paths, cycles,
    caterpillars, trees, grids) and a random generator for connected graphs
    of bounded pathwidth that also returns a width-(k+1) interval
    representation witness (as raw [(l, r)] pairs; see [Lcp_interval] for the
    typed view). The witness is what lets the prover run at benchmark scale
    without solving exact pathwidth. *)

type rng = Random.State.t

val path : int -> Graph.t
(** [path n]: vertices [0..n-1], edges [i]-[i+1]. Pathwidth 1 (for n >= 2). *)

val cycle : int -> Graph.t
(** [cycle n] for [n >= 3]. Pathwidth 2. *)

val complete : int -> Graph.t
val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b]: parts [0..a-1] and [a..a+b-1]. *)

val star : int -> Graph.t
(** [star n]: center [0] and [n] leaves. *)

val caterpillar : spine:int -> legs:int -> Graph.t
(** A spine path of [spine] vertices, each with [legs] pendant leaves.
    Pathwidth 1: the canonical hard family for label-size lower bounds. *)

val grid : int -> int -> Graph.t
(** [grid w h]: the w×h grid; pathwidth [min w h]. *)

val ladder : int -> Graph.t
(** [ladder n] = [grid n 2]; pathwidth 2. *)

val binary_tree : depth:int -> Graph.t
(** Complete binary tree; pathwidth [ceil(depth/2)]-ish, grows with depth. *)

val random_tree : rng -> int -> Graph.t
(** Uniform attachment tree: vertex [i] attaches to a uniform earlier vertex. *)

val diamond : Graph.t
(** K4 minus an edge, one of the [BFP24] forbidden minors. *)

val random_pathwidth :
  rng -> n:int -> k:int -> ?extra_edge_prob:float -> unit -> Graph.t * (int * int) array
(** [random_pathwidth rng ~n ~k ()] generates a connected graph on [n]
    vertices of pathwidth at most [k], together with an interval
    representation of width at most [k+1]: [intervals.(v) = (l_v, r_v)].
    Every vertex beyond the first attaches to a vertex whose interval is
    still open, which forces connectivity; [extra_edge_prob] (default 0.3)
    controls additional random edges between concurrently-open vertices,
    pushing the realized width toward [k+1]. *)

val shuffle_vertices : rng -> Graph.t -> Graph.t * int array
(** Random relabeling; returns the permutation used ([perm.(old) = new]). *)

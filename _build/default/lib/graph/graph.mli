(** Finite simple undirected graphs on vertices [0 .. n-1].

    This is the network substrate of the paper's model (§1.1): an n-vertex
    connected undirected graph whose vertices are processors and whose edges
    are communication links. The representation is immutable once built. *)

type t

type edge = int * int
(** Undirected edge, canonically stored with the smaller endpoint first. *)

val canonical_edge : int -> int -> edge
(** Order the endpoints. Raises [Invalid_argument] on a self-loop. *)

(** {1 Construction} *)

val of_edges : n:int -> edge list -> t
(** [of_edges ~n edges] builds the graph with vertex set [0..n-1]. Duplicate
    edges are collapsed; self-loops are rejected. Raises [Invalid_argument]
    if an endpoint is out of range. *)

val empty : n:int -> t

val add_edges : t -> edge list -> t

(** {1 Accessors} *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int list
(** Sorted, duplicate-free. *)

val degree : t -> int -> int
val mem_edge : t -> int -> int -> bool
val edges : t -> edge list
(** Sorted lexicographically; each edge appears once. *)

val fold_edges : (edge -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (edge -> unit) -> t -> unit
val fold_vertices : (int -> 'a -> 'a) -> t -> 'a -> 'a

val max_degree : t -> int

(** {1 Transformations} *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph induced by the vertex set [vs] (duplicates
    ignored), with vertices renumbered [0..|vs|-1] in increasing original
    order, together with the map from new index to original vertex. *)

val subgraph_edges : t -> edge list -> t
(** Same vertex set, keep only the listed edges (all must be edges of [g]). *)

val union_edges : t -> edge list -> t
(** Alias of {!add_edges}, named for readability at call sites that build
    completions. *)

val relabel : t -> int array -> t
(** [relabel g perm] renames vertex [v] to [perm.(v)]; [perm] must be a
    permutation of [0..n-1]. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted by [n] of the first. *)

val contract_edge : t -> int -> int -> t * int array
(** [contract_edge g u v] contracts edge [{u,v}] (which must exist), removing
    any parallel edges/self-loops created; returns the new graph and the map
    from old vertex to new vertex. *)

val remove_vertex : t -> int -> t * int array
(** Delete a vertex; returns the new graph and old→new map, where the removed
    vertex maps to [-1]. *)

val remove_edge : t -> int -> int -> t

(** {1 Comparison and printing} *)

val equal : t -> t -> bool
(** Same vertex count and same edge set. *)

val is_isomorphic : t -> t -> bool
(** Exact isomorphism test by backtracking; intended for small graphs
    (tests and figure demos only). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

type t = {
  parent : int array;
  rank : int array;
  mutable count : int;
}

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t x y =
  let rx = find t x and ry = find t y in
  if rx = ry then false
  else begin
    t.count <- t.count - 1;
    if t.rank.(rx) < t.rank.(ry) then t.parent.(rx) <- ry
    else if t.rank.(rx) > t.rank.(ry) then t.parent.(ry) <- rx
    else begin
      t.parent.(ry) <- rx;
      t.rank.(rx) <- t.rank.(rx) + 1
    end;
    true
  end

let same t x y = find t x = find t y
let count t = t.count

let groups t =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun x _ ->
      let r = find t x in
      Hashtbl.replace tbl r (x :: Option.value ~default:[] (Hashtbl.find_opt tbl r)))
    t.parent;
  Hashtbl.fold (fun _ vs acc -> List.rev vs :: acc) tbl []
  |> List.sort compare

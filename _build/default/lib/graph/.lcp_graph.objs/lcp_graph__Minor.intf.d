lib/graph/minor.mli: Graph

lib/graph/minor.ml: Array Graph List Traversal

(** Degeneracy orderings and bounded-outdegree orientations.

    A graph is d-degenerate if its edges can be acyclically oriented with
    outdegree at most d (paper, §2.1). Prop 2.1 turns an f(n)-bit
    edge-labeling scheme into an O(d·f(n))-bit vertex-labeling scheme by
    moving each edge label to the tail of its oriented edge. *)

val degeneracy_order : Graph.t -> int * int array
(** [(d, order)] where repeatedly removing a minimum-degree vertex yields
    the elimination order [order] (a permutation of vertices, removal order)
    and [d] is the maximum degree seen at removal time — the degeneracy. *)

val degeneracy : Graph.t -> int

val orientation : Graph.t -> (int * int) list
(** Each edge of the graph oriented from the endpoint that appears earlier
    in the degeneracy order to the later one; outdegree is at most the
    degeneracy, and the orientation is acyclic. *)

val out_edges : Graph.t -> int list array
(** [out_edges g] lists, for each vertex, the heads of its out-oriented
    edges under {!orientation}. *)

val max_outdegree : Graph.t -> int

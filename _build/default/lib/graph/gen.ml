type rng = Random.State.t

let path n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need n >= 3";
  Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.of_edges ~n !es

let complete_bipartite a b =
  let es = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      es := (u, v) :: !es
    done
  done;
  Graph.of_edges ~n:(a + b) !es

let star n = Graph.of_edges ~n:(n + 1) (List.init n (fun i -> (0, i + 1)))

let caterpillar ~spine ~legs =
  if spine < 1 then invalid_arg "Gen.caterpillar: need spine >= 1";
  let n = spine * (1 + legs) in
  let spine_edges = List.init (spine - 1) (fun i -> (i, i + 1)) in
  let leg_edges = ref [] in
  for s = 0 to spine - 1 do
    for j = 0 to legs - 1 do
      leg_edges := (s, spine + (s * legs) + j) :: !leg_edges
    done
  done;
  Graph.of_edges ~n (spine_edges @ !leg_edges)

let grid w h =
  if w < 1 || h < 1 then invalid_arg "Gen.grid: need positive dimensions";
  let idx x y = (y * w) + x in
  let es = ref [] in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if x + 1 < w then es := (idx x y, idx (x + 1) y) :: !es;
      if y + 1 < h then es := (idx x y, idx x (y + 1)) :: !es
    done
  done;
  Graph.of_edges ~n:(w * h) !es

let ladder n = grid n 2

let binary_tree ~depth =
  let n = (1 lsl (depth + 1)) - 1 in
  let es = List.init (n - 1) (fun i -> ((i + 1 - 1) / 2, i + 1)) in
  Graph.of_edges ~n es

let random_tree rng n =
  let es =
    List.init (max 0 (n - 1)) (fun i ->
        (Random.State.int rng (i + 1), i + 1))
  in
  Graph.of_edges ~n es

let diamond = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]

let random_pathwidth rng ~n ~k ?(extra_edge_prob = 0.3) () =
  if n < 1 then invalid_arg "Gen.random_pathwidth: need n >= 1";
  if k < 1 then invalid_arg "Gen.random_pathwidth: need k >= 1";
  let width = k + 1 in
  let intervals = Array.make n (0, 0) in
  let edges = ref [] in
  (* [open_] holds vertices whose interval has not closed yet. *)
  let open_ = ref [ 0 ] in
  let created = ref 1 in
  let time = ref 0 in
  intervals.(0) <- (0, 0);
  let pick_open () =
    let l = !open_ in
    List.nth l (Random.State.int rng (List.length l))
  in
  let close v =
    let l, _ = intervals.(v) in
    intervals.(v) <- (l, !time);
    open_ := List.filter (fun u -> u <> v) !open_
  in
  while !created < n do
    incr time;
    let can_open = List.length !open_ < width in
    let must_open = List.length !open_ <= 1 in
    if must_open || (can_open && Random.State.bool rng) then begin
      (* introduce a fresh vertex attached to some open vertex *)
      let v = !created in
      incr created;
      intervals.(v) <- (!time, !time);
      let anchor = pick_open () in
      edges := (anchor, v) :: !edges;
      (* extra edges among currently open vertices *)
      List.iter
        (fun u ->
          if u <> anchor && Random.State.float rng 1.0 < extra_edge_prob then
            edges := (u, v) :: !edges)
        !open_;
      open_ := v :: !open_
    end
    else close (pick_open ())
  done;
  (* close the remaining intervals *)
  incr time;
  List.iter
    (fun v ->
      let l, _ = intervals.(v) in
      intervals.(v) <- (l, !time))
    !open_;
  (Graph.of_edges ~n !edges, intervals)

let shuffle_vertices rng g =
  let n = Graph.n g in
  let perm = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  (Graph.relabel g perm, perm)

(** Graph minor containment.

    H is a minor of G if H can be obtained from G by vertex deletions, edge
    deletions, and edge contractions (paper, §1.3). Equivalently, G contains
    an H-model: disjoint connected branch sets, one per vertex of H, with an
    edge of G between the branch sets of every edge of H.

    The generic test is exact but exponential — it is meant for the small
    graphs used in tests, examples, and figure demos. The special cases
    ([K3], paths) are fast and used by the F-minor-free example. *)

val has_subgraph : Graph.t -> sub:Graph.t -> bool
(** Is there a (not necessarily induced) subgraph of the first graph
    isomorphic to [sub]? Backtracking; small graphs. *)

val has_minor : Graph.t -> minor:Graph.t -> bool
(** Exact H-model search by branch-set backtracking; small graphs. *)

val is_minor_free : Graph.t -> minor:Graph.t -> bool

val has_k3_minor : Graph.t -> bool
(** Fast: equivalent to containing a cycle. *)

val has_path_minor : Graph.t -> t:int -> bool
(** Fast-ish: a graph has a [P_t] minor iff it has a simple path on [t]
    vertices. *)

val excluding_forest_pathwidth_bound : Graph.t -> int
(** The quantitative Excluding Forest Theorem: every F-minor-free graph has
    pathwidth at most [|V(F)| - 2] (Bienstock–Robertson–Seymour–Thomas).
    Given a forest [F], return that bound; raises [Invalid_argument] if the
    graph is not a forest. *)

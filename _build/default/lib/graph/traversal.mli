(** Graph traversals: reachability, components, distances, paths, spanning
    trees. These back the spanning-tree pointer scheme (Prop 2.2) and the
    path choices inside the Prop 4.6 embedding. *)

val bfs_from : Graph.t -> int -> int array
(** [bfs_from g s] is the distance array from [s]; unreachable vertices get
    [-1]. *)

val bfs_tree : Graph.t -> int -> int array
(** Parent array of a BFS tree rooted at [s]; the root and unreachable
    vertices get [-1]. *)

val connected_components : Graph.t -> int list list
(** Vertex sets of the components, each sorted, ordered by smallest member. *)

val component_of : Graph.t -> int -> int list
val is_connected : Graph.t -> bool

val shortest_path : Graph.t -> int -> int -> int list option
(** Vertex sequence from source to target inclusive, or [None]. *)

val any_path : Graph.t -> int -> int -> int list option
(** Some simple path between the endpoints (DFS order), or [None]. *)

val spanning_tree : Graph.t -> root:int -> Graph.edge list
(** Edges of a BFS spanning tree of the component of [root]. *)

val is_acyclic : Graph.t -> bool
(** No cycle anywhere (i.e., the graph is a forest). *)

val is_tree : Graph.t -> bool
val is_path_graph : Graph.t -> bool
(** Connected, all degrees <= 2, acyclic. *)

val is_cycle_graph : Graph.t -> bool

val longest_path_length : Graph.t -> int
(** Number of vertices on a longest simple path (exponential search; small
    graphs only). Used for P_t-minor testing: a graph has a [P_t] minor iff
    it has a path on [t] vertices. *)

val eccentricity : Graph.t -> int -> int
val diameter : Graph.t -> int
(** Max distance inside one component; requires a connected graph. *)

(* Subgraph isomorphism: map each vertex of [sub] to a distinct vertex of
   [g] such that sub-edges land on g-edges. *)
let has_subgraph g ~sub =
  let hn = Graph.n sub and gn = Graph.n g in
  if hn > gn || Graph.m sub > Graph.m g then false
  else begin
    let image = Array.make hn (-1) in
    let used = Array.make gn false in
    let rec assign u =
      if u = hn then true
      else
        let ok v =
          (not used.(v))
          && Graph.degree g v >= Graph.degree sub u
          && List.for_all
               (fun w -> w >= u || Graph.mem_edge g image.(w) v)
               (Graph.neighbors sub u)
        in
        let rec try_v v =
          if v = gn then false
          else if ok v then begin
            image.(u) <- v;
            used.(v) <- true;
            if assign (u + 1) then true
            else begin
              image.(u) <- -1;
              used.(v) <- false;
              try_v (v + 1)
            end
          end
          else try_v (v + 1)
        in
        try_v 0
    in
    assign 0
  end

(* H-model search. [assign.(v)] is the branch set of g-vertex v, or -1.
   We build branch sets one H-vertex at a time: pick a seed, then grow the
   set through neighbors; when a branch set is complete, the next H-vertex
   starts. On completion check inter-branch edges. Connectivity of each
   branch set is maintained by construction (growth through neighbors). *)
let has_minor g ~minor:h =
  let hn = Graph.n h and gn = Graph.n g in
  if hn = 0 then true
  else if hn > gn || Graph.m h > Graph.m g then false
  else begin
    let assign = Array.make gn (-1) in
    (* branch_adj.(i).(j) = true when an edge between branch i and j exists *)
    let branch_adj = Array.make_matrix hn hn false in
    let record_edges v i =
      (* update branch adjacency for edges incident to v *)
      List.iter
        (fun w ->
          let j = assign.(w) in
          if j >= 0 && j <> i then begin
            branch_adj.(i).(j) <- true;
            branch_adj.(j).(i) <- true
          end)
        (Graph.neighbors g v)
    in
    let recompute_branch_adj () =
      for i = 0 to hn - 1 do
        for j = 0 to hn - 1 do
          branch_adj.(i).(j) <- false
        done
      done;
      Graph.iter_edges
        (fun (u, v) ->
          let i = assign.(u) and j = assign.(v) in
          if i >= 0 && j >= 0 && i <> j then begin
            branch_adj.(i).(j) <- true;
            branch_adj.(j).(i) <- true
          end)
        g
    in
    let h_edges_ok upto =
      (* all h-edges within branches 0..upto must be realized *)
      Graph.fold_edges
        (fun (a, b) ok -> ok && (a > upto || b > upto || branch_adj.(a).(b)))
        h true
    in
    (* grow branch set i; [frontier] are assigned vertices of branch i *)
    let rec grow i =
      (* Option 1: branch i is complete; edges among branches 0..i are now
         final, so they must all be realized before moving on *)
      (if h_edges_ok i then next_branch (i + 1) else false)
      ||
      (* Option 2: extend branch i by an unassigned neighbor *)
      let candidates =
        Graph.fold_vertices
          (fun v acc ->
            if assign.(v) = i then
              List.filter (fun w -> assign.(w) = -1) (Graph.neighbors g v) @ acc
            else acc)
          g []
        |> List.sort_uniq compare
      in
      List.exists
        (fun w ->
          assign.(w) <- i;
          record_edges w i;
          let found = grow i in
          if not found then begin
            assign.(w) <- -1;
            recompute_branch_adj ()
          end;
          found)
        candidates
    and next_branch i =
      if i = hn then h_edges_ok (hn - 1)
      else
        (* choose a seed for branch i among unassigned vertices; to break
           symmetry, only seeds larger than the smallest unassigned vertex
           would be wrong — any unassigned vertex may seed, so try all. *)
        Graph.fold_vertices
          (fun v found ->
            found
            ||
            if assign.(v) = -1 then begin
              assign.(v) <- i;
              record_edges v i;
              let ok = grow i in
              if not ok then begin
                assign.(v) <- -1;
                recompute_branch_adj ()
              end;
              ok
            end
            else false)
          g false
    in
    next_branch 0
  end

let is_minor_free g ~minor = not (has_minor g ~minor)

let has_k3_minor g = not (Traversal.is_acyclic g)

let has_path_minor g ~t = Traversal.longest_path_length g >= t

let excluding_forest_pathwidth_bound f =
  if not (Traversal.is_acyclic f) then
    invalid_arg "Minor.excluding_forest_pathwidth_bound: not a forest";
  max 0 (Graph.n f - 2)

(** Disjoint-set forest with path compression and union by rank. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0..n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merge the two sets; returns [false] if they were already merged. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of distinct sets. *)

val groups : t -> int list list
(** The sets, each sorted, ordered by smallest element. *)

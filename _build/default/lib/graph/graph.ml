type edge = int * int

type t = {
  n : int;
  adj : int list array; (* sorted, duplicate-free *)
  m : int;
}

let canonical_edge u v =
  if u = v then invalid_arg "Graph.canonical_edge: self-loop";
  if u < v then (u, v) else (v, u)

let n g = g.n
let m g = g.m

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let adj = Array.make (max n 1) [] in
  let check v =
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Graph.of_edges: vertex %d out of [0,%d)" v n)
  in
  let seen = Hashtbl.create (2 * List.length edges + 1) in
  let m = ref 0 in
  let add (u, v) =
    let (u, v) = canonical_edge u v in
    check u;
    check v;
    if not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v);
      incr m
    end
  in
  List.iter add edges;
  let adj = if n = 0 then [||] else Array.sub adj 0 n in
  Array.iteri (fun i l -> adj.(i) <- List.sort_uniq compare l) adj;
  { n; adj; m = !m }

let empty ~n = of_edges ~n []

let neighbors g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.neighbors: vertex out of range";
  g.adj.(v)

let degree g v = List.length (neighbors g v)

let mem_edge g u v =
  u <> v && u >= 0 && u < g.n && v >= 0 && v < g.n && List.mem v g.adj.(u)

let fold_edges f g acc =
  let acc = ref acc in
  for u = 0 to g.n - 1 do
    List.iter (fun v -> if u < v then acc := f (u, v) !acc) g.adj.(u)
  done;
  !acc

let edges g = List.rev (fold_edges (fun e l -> e :: l) g [])

let iter_edges f g = fold_edges (fun e () -> f e) g ()

let fold_vertices f g acc =
  let acc = ref acc in
  for v = 0 to g.n - 1 do
    acc := f v !acc
  done;
  !acc

let max_degree g = fold_vertices (fun v acc -> max acc (degree g v)) g 0

let add_edges g new_edges = of_edges ~n:g.n (new_edges @ edges g)
let union_edges = add_edges

let induced g vs =
  let vs = List.sort_uniq compare vs in
  List.iter (fun v ->
      if v < 0 || v >= g.n then invalid_arg "Graph.induced: vertex out of range")
    vs;
  let back = Array.of_list vs in
  let fwd = Hashtbl.create (List.length vs) in
  Array.iteri (fun i v -> Hashtbl.add fwd v i) back;
  let es =
    fold_edges
      (fun (u, v) acc ->
        match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
        | Some u', Some v' -> (u', v') :: acc
        | _ -> acc)
      g []
  in
  (of_edges ~n:(Array.length back) es, back)

let subgraph_edges g es =
  List.iter (fun (u, v) ->
      if not (mem_edge g u v) then
        invalid_arg "Graph.subgraph_edges: not an edge of the graph")
    es;
  of_edges ~n:g.n es

let relabel g perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: bad permutation";
  let seen = Array.make g.n false in
  Array.iter (fun v ->
      if v < 0 || v >= g.n || seen.(v) then
        invalid_arg "Graph.relabel: not a permutation"
      else seen.(v) <- true)
    perm;
  of_edges ~n:g.n (List.map (fun (u, v) -> (perm.(u), perm.(v))) (edges g))

let disjoint_union g1 g2 =
  let shift = g1.n in
  of_edges ~n:(g1.n + g2.n)
    (edges g1 @ List.map (fun (u, v) -> (u + shift, v + shift)) (edges g2))

let contract_edge g u v =
  if not (mem_edge g u v) then invalid_arg "Graph.contract_edge: not an edge";
  let (u, v) = canonical_edge u v in
  (* v is merged into u; vertices above v shift down by one *)
  let map = Array.make g.n 0 in
  for x = 0 to g.n - 1 do
    map.(x) <- (if x = v then u else if x > v then x - 1 else x)
  done;
  let es =
    fold_edges
      (fun (a, b) acc ->
        let a' = map.(a) and b' = map.(b) in
        if a' = b' then acc else canonical_edge a' b' :: acc)
      g []
  in
  (of_edges ~n:(g.n - 1) es, map)

let remove_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph.remove_vertex: out of range";
  let map = Array.make g.n 0 in
  for x = 0 to g.n - 1 do
    map.(x) <- (if x = v then -1 else if x > v then x - 1 else x)
  done;
  let es =
    fold_edges
      (fun (a, b) acc ->
        if a = v || b = v then acc else (map.(a), map.(b)) :: acc)
      g []
  in
  (of_edges ~n:(g.n - 1) es, map)

let remove_edge g u v =
  let (u, v) = canonical_edge u v in
  of_edges ~n:g.n (List.filter (fun e -> e <> (u, v)) (edges g))

let equal g1 g2 = g1.n = g2.n && edges g1 = edges g2

(* Backtracking isomorphism for small graphs: map vertices of g1 one by one,
   pruning on degree and adjacency consistency. *)
let is_isomorphic g1 g2 =
  if g1.n <> g2.n || g1.m <> g2.m then false
  else begin
    let n = g1.n in
    let deg1 = Array.init n (degree g1) and deg2 = Array.init n (degree g2) in
    let sorted a =
      let b = Array.copy a in
      Array.sort compare b;
      b
    in
    if sorted deg1 <> sorted deg2 then false
    else begin
      let image = Array.make n (-1) in
      let used = Array.make n false in
      let rec assign u =
        if u = n then true
        else
          let rec try_candidates v =
            if v = n then false
            else if
              (not used.(v))
              && deg1.(u) = deg2.(v)
              && List.for_all
                   (fun w ->
                     w >= u || mem_edge g2 image.(w) v)
                   (neighbors g1 u)
              && List.for_all
                   (fun w -> w >= u || mem_edge g1 u w = mem_edge g2 image.(w) v)
                   (List.init u (fun i -> i))
            then begin
              image.(u) <- v;
              used.(v) <- true;
              if assign (u + 1) then true
              else begin
                image.(u) <- -1;
                used.(v) <- false;
                try_candidates (v + 1)
              end
            end
            else try_candidates (v + 1)
          in
          try_candidates 0
      in
      assign 0
    end
  end

let pp ppf g =
  Format.fprintf ppf "@[<hov 2>graph(n=%d, m=%d;@ %a)@]" g.n g.m
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (u, v) -> Format.fprintf ppf "%d-%d" u v))
    (edges g)

let to_string g = Format.asprintf "%a" pp g

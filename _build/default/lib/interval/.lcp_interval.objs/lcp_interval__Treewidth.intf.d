lib/interval/treewidth.mli: Lcp_graph Tree_decomposition

lib/interval/representation.ml: Array Bytes Format Interval Lcp_graph List Printf

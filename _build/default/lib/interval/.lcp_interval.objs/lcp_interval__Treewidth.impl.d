lib/interval/treewidth.ml: Array Lcp_graph List Tree_decomposition

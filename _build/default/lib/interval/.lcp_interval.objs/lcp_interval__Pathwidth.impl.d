lib/interval/pathwidth.ml: Array Interval Lcp_graph List Representation

lib/interval/representation.mli: Format Interval Lcp_graph

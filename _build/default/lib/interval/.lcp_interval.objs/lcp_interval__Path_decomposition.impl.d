lib/interval/path_decomposition.ml: Array Format Interval Lcp_graph List Printf Representation String

lib/interval/tree_decomposition.ml: Array Format Lcp_graph List Path_decomposition Printf String

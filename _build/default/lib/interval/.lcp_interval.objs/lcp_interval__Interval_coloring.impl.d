lib/interval/interval_coloring.ml: Array Interval List

lib/interval/pathwidth.mli: Lcp_graph Representation

lib/interval/interval_coloring.mli: Interval

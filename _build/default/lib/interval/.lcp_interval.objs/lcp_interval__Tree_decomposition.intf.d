lib/interval/tree_decomposition.mli: Format Lcp_graph Path_decomposition

lib/interval/path_decomposition.mli: Format Lcp_graph Representation

let color intervals =
  let idx = Array.init (Array.length intervals) (fun i -> i) in
  Array.sort
    (fun a b -> Interval.compare_by_left intervals.(a) intervals.(b))
    idx;
  let lane = Array.make (Array.length intervals) (-1) in
  (* last_end.(l) = right endpoint of the last interval placed in lane l *)
  let last_end = ref [||] in
  let lanes = ref 0 in
  Array.iter
    (fun i ->
      let iv = intervals.(i) in
      let rec find l =
        if l = !lanes then begin
          last_end := Array.append !last_end [| Interval.r iv |];
          incr lanes;
          l
        end
        else if !last_end.(l) < Interval.l iv then begin
          !last_end.(l) <- Interval.r iv;
          l
        end
        else find (l + 1)
      in
      lane.(i) <- find 0)
    idx;
  (lane, !lanes)

let lanes_of_coloring intervals lane =
  let lanes = Array.fold_left (fun acc l -> max acc (l + 1)) 0 lane in
  let out = Array.make lanes [] in
  Array.iteri (fun i l -> out.(l) <- intervals.(i) :: out.(l)) lane;
  Array.map
    (fun ivs -> List.sort Interval.compare_by_left ivs)
    out

let is_valid_coloring intervals lane =
  let groups = lanes_of_coloring intervals lane in
  Array.for_all
    (fun ivs ->
      let rec ok = function
        | [] | [ _ ] -> true
        | a :: (b :: _ as rest) -> Interval.strictly_before a b && ok rest
      in
      ok ivs)
    groups

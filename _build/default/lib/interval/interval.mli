(** Non-empty closed integer intervals [l, r].

    The building block of interval representations (Def 4.1). The order
    [strictly_before] is the paper's [≺]: [a, b] ≺ [c, d] iff [b < c]. *)

type t = private { l : int; r : int }

val make : int -> int -> t
(** Raises [Invalid_argument] unless [l <= r]. *)

val point : int -> t
val l : t -> int
val r : t -> int

val strictly_before : t -> t -> bool
(** The paper's [≺]. *)

val intersects : t -> t -> bool
val mem : int -> t -> bool
val hull : t -> t -> t
(** Smallest interval containing both. *)

val hull_list : t list -> t
(** Raises [Invalid_argument] on the empty list. *)

val compare_by_left : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

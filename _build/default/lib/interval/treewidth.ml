module Graph = Lcp_graph.Graph

let check_size g =
  if Graph.n g > 18 then
    invalid_arg "Treewidth.exact: graph too large for the exact algorithm"

(* Q(v, X): number of vertices outside X ∪ {v} reachable from v through X *)
let reach_count g v x =
  let n = Graph.n g in
  let seen = Array.make n false in
  let count = ref 0 in
  let rec go u =
    List.iter
      (fun w ->
        if not seen.(w) then begin
          seen.(w) <- true;
          if x land (1 lsl w) <> 0 then go w
          else if w <> v then incr count
        end)
      (Graph.neighbors g u)
  in
  seen.(v) <- true;
  go v;
  !count

let solve g =
  check_size g;
  let n = Graph.n g in
  let size = 1 lsl n in
  let cost = Array.make size max_int in
  let choice = Array.make size (-1) in
  cost.(0) <- 0;
  for s = 1 to size - 1 do
    for v = 0 to n - 1 do
      if s land (1 lsl v) <> 0 then begin
        let without = s lxor (1 lsl v) in
        let prev = cost.(without) in
        if prev < max_int then begin
          let c = max prev (reach_count g v without) in
          if c < cost.(s) then begin
            cost.(s) <- c;
            choice.(s) <- v
          end
        end
      end
    done
  done;
  (cost, choice)

let exact_order g =
  let n = Graph.n g in
  if n = 0 then (0, [||])
  else begin
    let cost, choice = solve g in
    let full = (1 lsl n) - 1 in
    let order = Array.make n 0 in
    let s = ref full in
    for i = n - 1 downto 0 do
      let v = choice.(!s) in
      order.(i) <- v;
      s := !s lxor (1 lsl v)
    done;
    (cost.(full), order)
  end

let exact g = fst (exact_order g)

let decomposition_of_order g order =
  let n = Graph.n g in
  if n = 0 then Tree_decomposition.make g ~bags:[||] ~edges:[]
  else begin
    let pos = Array.make n 0 in
    Array.iteri (fun i v -> pos.(v) <- i) order;
    (* fill-in elimination with adjacency sets *)
    let adj = Array.make n [] in
    Graph.iter_edges
      (fun (u, v) ->
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v))
      g;
    let adj = Array.map (List.sort_uniq compare) adj in
    let bags = Array.make n [] in
    let parent = Array.make n (-1) in
    let eliminated = Array.make n false in
    Array.iter
      (fun v ->
        let nbrs = List.filter (fun w -> not eliminated.(w)) adj.(v) in
        bags.(pos.(v)) <- List.sort_uniq compare (v :: nbrs);
        (* make the remaining neighborhood a clique *)
        List.iter
          (fun a ->
            List.iter
              (fun b ->
                if a <> b && not (List.mem b adj.(a)) then
                  adj.(a) <- List.sort_uniq compare (b :: adj.(a)))
              nbrs)
          nbrs;
        (* attach to the earliest-eliminated remaining neighbor's bag *)
        (match nbrs with
        | [] -> ()
        | _ ->
            let next =
              List.fold_left
                (fun acc w -> if pos.(w) < pos.(acc) then w else acc)
                (List.hd nbrs) nbrs
            in
            parent.(pos.(v)) <- pos.(next));
        eliminated.(v) <- true)
      order;
    (* bags with no parent (the last one, or isolated pieces) attach to the
       final bag to keep the bag graph a tree *)
    let edges = ref [] in
    Array.iteri
      (fun i p ->
        if p >= 0 then edges := (i, p) :: !edges
        else if i < n - 1 then edges := (i, n - 1) :: !edges)
      parent;
    Tree_decomposition.make g ~bags ~edges:!edges
  end

let exact_decomposition g =
  let _, order = exact_order g in
  decomposition_of_order g order

(** Exact treewidth for small graphs, via the elimination-ordering subset
    dynamic program (O(2ⁿ·n·(n+m))): the treewidth is the minimum over
    elimination orders of the maximum, over vertices, of the number of
    later vertices reachable through already-eliminated ones.

    Provides the reference values for the tree-decomposition substrate and
    the treewidth-vs-pathwidth comparisons (tw ≤ pw always; the paper's
    open question in §7 asks whether its techniques lift from pathwidth to
    treewidth). *)

val exact : Lcp_graph.Graph.t -> int
(** Raises [Invalid_argument] when [n > 18]. *)

val exact_order : Lcp_graph.Graph.t -> int * int array
(** [(tw, elimination order)]. *)

val decomposition_of_order :
  Lcp_graph.Graph.t -> int array -> Tree_decomposition.t
(** The standard construction: eliminate along the order on the fill-in
    graph; bag of v = v plus its current neighbors; each bag attaches to
    the bag of its earliest-eliminated remaining neighbor. The width equals
    the order's elimination width. *)

val exact_decomposition : Lcp_graph.Graph.t -> Tree_decomposition.t
(** Width = treewidth. Small graphs only. *)

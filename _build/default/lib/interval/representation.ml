module Graph = Lcp_graph.Graph

type t = {
  graph : Graph.t;
  intervals : Interval.t array;
}

let validate g intervals =
  if Array.length intervals <> Graph.n g then
    Error
      (Printf.sprintf "interval count %d does not match vertex count %d"
         (Array.length intervals) (Graph.n g))
  else
    Graph.fold_edges
      (fun (u, v) acc ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            if Interval.intersects intervals.(u) intervals.(v) then Ok ()
            else
              Error
                (Format.asprintf "edge %d-%d: intervals %a and %a are disjoint"
                   u v Interval.pp intervals.(u) Interval.pp intervals.(v)))
      g (Ok ())

let make g intervals =
  match validate g intervals with
  | Ok () -> { graph = g; intervals = Array.copy intervals }
  | Error msg -> invalid_arg ("Representation.make: " ^ msg)

let of_pairs g pairs = make g (Array.map (fun (l, r) -> Interval.make l r) pairs)

let graph t = t.graph
let interval t v = t.intervals.(v)
let intervals t = Array.copy t.intervals

let width_of_intervals intervals =
  (* sweep: +1 at l, -1 just after r *)
  let events =
    Array.to_list intervals
    |> List.concat_map (fun iv ->
           [ (Interval.l iv, 1); (Interval.r iv + 1, -1) ])
    |> List.sort compare
  in
  let _, best =
    List.fold_left
      (fun (cur, best) (_, delta) ->
        let cur = cur + delta in
        (cur, max best cur))
      (0, 0) events
  in
  best

let width t = width_of_intervals t.intervals

let restrict t vs =
  let sub, back = Graph.induced t.graph vs in
  let sub_intervals = Array.map (fun old -> t.intervals.(old)) back in
  ({ graph = sub; intervals = sub_intervals }, back)

let hull_of t vs =
  match vs with
  | [] -> invalid_arg "Representation.hull_of: empty vertex set"
  | _ -> Interval.hull_list (List.map (fun v -> t.intervals.(v)) vs)

let pp ppf t =
  let n = Graph.n t.graph in
  if n = 0 then Format.fprintf ppf "(empty)"
  else begin
    let lo =
      Array.fold_left (fun acc iv -> min acc (Interval.l iv)) max_int t.intervals
    in
    let hi =
      Array.fold_left (fun acc iv -> max acc (Interval.r iv)) min_int t.intervals
    in
    let span = hi - lo + 1 in
    for v = 0 to n - 1 do
      let iv = t.intervals.(v) in
      let line = Bytes.make span ' ' in
      for x = Interval.l iv - lo to Interval.r iv - lo do
        Bytes.set line x '='
      done;
      Format.fprintf ppf "v%-3d %s  %a@." v (Bytes.to_string line) Interval.pp iv
    done
  end

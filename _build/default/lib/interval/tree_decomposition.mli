(** Tree decompositions — the general setting the paper's path
    decompositions specialize (§2.2: graphs of treewidth k are exactly the
    (k+1)-terminal recursive graphs), and the setting of the FMR⁺24
    baseline and of the paper's §7 future-work question.

    A tree decomposition is a tree of bags covering every edge, such that
    the bags containing any fixed vertex form a subtree. Width =
    max bag size − 1. Every path decomposition is a tree decomposition
    whose tree is a path. *)

type t = private {
  bags : int list array;  (** each sorted *)
  edges : (int * int) list;  (** tree edges between bag indices *)
}

val make :
  Lcp_graph.Graph.t -> bags:int list array -> edges:(int * int) list -> t
(** Validates all three conditions; raises [Invalid_argument] with a
    diagnostic. *)

val validate :
  Lcp_graph.Graph.t ->
  bags:int list array ->
  edges:(int * int) list ->
  (unit, string) result

val width : t -> int
val bag_count : t -> int

val of_path_decomposition : Path_decomposition.t -> t
(** The trivial embedding: bags in a path. *)

val pp : Format.formatter -> t -> unit

module Graph = Lcp_graph.Graph

type t = {
  bags : int list array;
  edges : (int * int) list;
}

let validate g ~bags ~edges =
  let n = Graph.n g in
  let s = Array.length bags in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let bad_edge =
    List.find_opt (fun (a, b) -> a < 0 || b < 0 || a >= s || b >= s || a = b)
      edges
  in
  if s = 0 && n > 0 then err "no bags"
  else if bad_edge <> None then err "tree edge out of range"
  else begin
    (* the bag graph must be a tree *)
    let tree = Graph.of_edges ~n:(max s 1) edges in
    if s > 0 && not (Lcp_graph.Traversal.is_tree tree) then
      err "bag graph is not a tree"
    else begin
      (* every vertex in some bag; every edge inside some bag *)
      let holding = Array.make n [] in
      Array.iteri
        (fun i bag ->
          List.iter
            (fun v ->
              if v < 0 || v >= n then raise Exit;
              holding.(v) <- i :: holding.(v))
            bag)
        bags;
      let vertex_missing = ref None in
      for v = 0 to n - 1 do
        if holding.(v) = [] && !vertex_missing = None then
          vertex_missing := Some v
      done;
      match !vertex_missing with
      | Some v -> err "vertex %d is in no bag" v
      | None ->
          let edge_uncovered =
            Graph.fold_edges
              (fun (u, v) acc ->
                match acc with
                | Some _ -> acc
                | None ->
                    if
                      List.exists (fun i -> List.mem v bags.(i)) holding.(u)
                    then None
                    else Some (u, v))
              g None
          in
          (match edge_uncovered with
          | Some (u, v) -> err "edge %d-%d is in no bag" u v
          | None ->
              (* connectivity of each vertex's bag set within the tree *)
              let rec find_disconnected v =
                if v = n then None
                else begin
                  let mine = List.sort_uniq compare holding.(v) in
                  let sub, _ = Graph.induced tree mine in
                  if Lcp_graph.Traversal.is_connected sub then
                    find_disconnected (v + 1)
                  else Some v
                end
              in
              (match find_disconnected 0 with
              | Some v -> err "bags of vertex %d are not connected" v
              | None -> Ok ()))
    end
  end

let make g ~bags ~edges =
  match
    try validate g ~bags ~edges with Exit -> Error "bag vertex out of range"
  with
  | Ok () ->
      { bags = Array.map (List.sort_uniq compare) bags; edges }
  | Error m -> invalid_arg ("Tree_decomposition.make: " ^ m)

let width t =
  Array.fold_left (fun acc bag -> max acc (List.length bag)) 0 t.bags - 1

let bag_count t = Array.length t.bags

let of_path_decomposition pd =
  let bags = Path_decomposition.bags pd in
  let s = Array.length bags in
  { bags; edges = List.init (max 0 (s - 1)) (fun i -> (i, i + 1)) }

let pp ppf t =
  Array.iteri
    (fun i bag ->
      Format.fprintf ppf "B%-3d {%s}@." i
        (String.concat ", " (List.map string_of_int bag)))
    t.bags;
  Format.fprintf ppf "tree: %s@."
    (String.concat ", "
       (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) t.edges))

type t = { l : int; r : int }

let make l r =
  if l > r then invalid_arg "Interval.make: empty interval";
  { l; r }

let point x = { l = x; r = x }
let l t = t.l
let r t = t.r
let strictly_before a b = a.r < b.l
let intersects a b = a.l <= b.r && b.l <= a.r
let mem x t = t.l <= x && x <= t.r
let hull a b = { l = min a.l b.l; r = max a.r b.r }

let hull_list = function
  | [] -> invalid_arg "Interval.hull_list: empty"
  | x :: xs -> List.fold_left hull x xs

let compare_by_left a b =
  match compare a.l b.l with 0 -> compare a.r b.r | c -> c

let equal a b = a.l = b.l && a.r = b.r
let pp ppf t = Format.fprintf ppf "[%d,%d]" t.l t.r

(** Path decompositions (Def 1.1): a sequence of bags [X_1 .. X_s] covering
    every edge, with each vertex's bags forming a contiguous run. Width is
    [max |X_i| - 1]. Interchangeable with interval representations. *)

type t = private int list array
(** Bags in sequence order; each bag is sorted. *)

val make : Lcp_graph.Graph.t -> int list array -> t
(** Validates (P1) and (P2); raises [Invalid_argument] with a diagnostic. *)

val validate : Lcp_graph.Graph.t -> int list array -> (unit, string) result
val bags : t -> int list array
val width : t -> int

val of_interval_representation : Representation.t -> t
(** One bag per event point that matters (the distinct interval endpoints),
    in increasing order. *)

val to_interval_representation : Lcp_graph.Graph.t -> t -> Representation.t
(** [I_v] = the index range of the bags containing [v]. *)

val pp : Format.formatter -> t -> unit

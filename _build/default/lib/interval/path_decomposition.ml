module Graph = Lcp_graph.Graph

type t = int list array

let validate g bags =
  let n = Graph.n g in
  let s = Array.length bags in
  let first = Array.make n max_int and last = Array.make n (-1) in
  let count = Array.make n 0 in
  let bad = ref None in
  Array.iteri
    (fun i bag ->
      List.iter
        (fun v ->
          if v < 0 || v >= n then
            bad := Some (Printf.sprintf "bag %d: vertex %d out of range" i v)
          else begin
            first.(v) <- min first.(v) i;
            last.(v) <- max last.(v) i;
            count.(v) <- count.(v) + 1
          end)
        (List.sort_uniq compare bag))
    bags;
  match !bad with
  | Some msg -> Error msg
  | None ->
      let vertex_ok = ref (Ok ()) in
      for v = 0 to n - 1 do
        match !vertex_ok with
        | Error _ -> ()
        | Ok () ->
            if last.(v) < 0 then
              vertex_ok := Error (Printf.sprintf "vertex %d is in no bag" v)
            else if count.(v) <> last.(v) - first.(v) + 1 then
              (* (P2): bags containing v must be contiguous *)
              vertex_ok :=
                Error (Printf.sprintf "vertex %d: bags not contiguous" v)
      done;
      (match !vertex_ok with
      | Error _ as e -> e
      | Ok () ->
          (* (P1): every edge inside some bag <=> interval intersection *)
          Graph.fold_edges
            (fun (u, v) acc ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  if first.(u) <= last.(v) && first.(v) <= last.(u) then Ok ()
                  else
                    Error
                      (Printf.sprintf "edge %d-%d is in no common bag" u v))
            g (Ok ()))
  |> fun res -> if s = 0 && n > 0 then Error "no bags" else res

let make g bags =
  match validate g bags with
  | Ok () -> Array.map (List.sort_uniq compare) bags
  | Error msg -> invalid_arg ("Path_decomposition.make: " ^ msg)

let bags t = Array.map (fun b -> b) t

let width t =
  Array.fold_left (fun acc bag -> max acc (List.length bag)) 0 t - 1

let of_interval_representation rep =
  let g = Representation.graph rep in
  let n = Graph.n g in
  if n = 0 then [||]
  else begin
    let points =
      List.init n (fun v ->
          let iv = Representation.interval rep v in
          [ Interval.l iv; Interval.r iv ])
      |> List.concat |> List.sort_uniq compare
    in
    let bag_at x =
      List.filter
        (fun v -> Interval.mem x (Representation.interval rep v))
        (List.init n (fun v -> v))
    in
    Array.of_list (List.map bag_at points)
  end

let to_interval_representation g t =
  let n = Graph.n g in
  let first = Array.make n max_int and last = Array.make n (-1) in
  Array.iteri
    (fun i bag ->
      List.iter
        (fun v ->
          first.(v) <- min first.(v) i;
          last.(v) <- max last.(v) i)
        bag)
    t;
  Representation.make g
    (Array.init n (fun v -> Interval.make first.(v) last.(v)))

let pp ppf t =
  Array.iteri
    (fun i bag ->
      Format.fprintf ppf "X%-3d {%s}@." (i + 1)
        (String.concat ", " (List.map string_of_int bag)))
    t

(** Interval representations of graphs (Def 4.1): an assignment of a
    non-empty interval to each vertex such that the intervals of adjacent
    vertices intersect. The width is the maximum number of intervals sharing
    a point; a graph has pathwidth k iff it has an interval representation
    of width k+1. *)

type t = private {
  graph : Lcp_graph.Graph.t;
  intervals : Interval.t array;
}

val make : Lcp_graph.Graph.t -> Interval.t array -> t
(** Validates (raises [Invalid_argument] with a diagnostic on failure). *)

val of_pairs : Lcp_graph.Graph.t -> (int * int) array -> t
(** Same, from raw [(l, r)] pairs such as those produced by
    [Lcp_graph.Gen.random_pathwidth]. *)

val validate : Lcp_graph.Graph.t -> Interval.t array -> (unit, string) result

val graph : t -> Lcp_graph.Graph.t
val interval : t -> int -> Interval.t
val intervals : t -> Interval.t array

val width : t -> int
(** Maximum number of intervals overlapping at a common point (sweep line);
    0 for the empty graph. *)

val width_of_intervals : Interval.t array -> int

val restrict : t -> int list -> t * int array
(** Interval representation induced on a vertex subset; returns the
    new-index → old-vertex map. *)

val hull_of : t -> int list -> Interval.t
(** [I_U]: the hull of the intervals of the given non-empty vertex set. For
    a connected set this is exactly the union of the intervals (paper,
    §4.2). *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering: one line per vertex showing its interval — the style of
    the paper's Figure 1. *)

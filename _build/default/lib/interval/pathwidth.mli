(** Computing pathwidth and width-optimal interval representations.

    Pathwidth equals the vertex separation number: the minimum over vertex
    orderings of the maximum, over prefixes, of the number of prefix
    vertices with a neighbor outside the prefix. The exact algorithm is a
    dynamic program over vertex subsets — O(2^n · n) time and O(2^n) space —
    intended for n up to ~20 (the prover is allowed unlimited computation;
    at benchmark scale the generator supplies witness representations
    instead). *)

val exact : Lcp_graph.Graph.t -> int
(** The pathwidth. Raises [Invalid_argument] when [n > 24]. *)

val exact_layout : Lcp_graph.Graph.t -> int * int array
(** [(pw, order)]: an optimal vertex ordering realizing the vertex
    separation number [pw]. *)

val interval_representation_of_layout :
  Lcp_graph.Graph.t -> int array -> Representation.t
(** The standard conversion: position [pos v] of each vertex in the layout;
    [I_v = [pos v, max(pos v, max pos of neighbors)]]. Width equals the
    layout's vertex separation + 1. *)

val exact_interval_representation : Lcp_graph.Graph.t -> Representation.t
(** Width = pathwidth + 1. Small graphs only (see {!exact}). *)

val heuristic_layout : Lcp_graph.Graph.t -> int array
(** Greedy layout: repeatedly append the vertex minimizing the resulting
    boundary size. No width guarantee, but valid, and good on path-like
    graphs. *)

val heuristic_interval_representation : Lcp_graph.Graph.t -> Representation.t

val vertex_separation_of_layout : Lcp_graph.Graph.t -> int array -> int

(** Partitioning intervals into lanes of pairwise-disjoint intervals
    (Observation 4.3): any family of width k splits into k such lanes —
    the clique number of an interval graph equals its chromatic number.

    Greedy sweep: process intervals by increasing left endpoint and assign
    each to the first lane whose last interval ends before it starts. *)

val color : Interval.t array -> int array * int
(** [(lane, lanes)] where [lane.(i)] ∈ [0 .. lanes-1]. The number of lanes
    equals the width of the family. *)

val lanes_of_coloring : Interval.t array -> int array -> Interval.t list array
(** Group intervals per lane, each sorted by [≺]. *)

val is_valid_coloring : Interval.t array -> int array -> bool
(** Every lane pairwise disjoint. *)

lib/lanes/completion.ml: Array Lane_partition Lcp_graph Lcp_interval List

lib/lanes/low_congestion.mli: Embedding Lane_partition Lcp_interval

lib/lanes/bounds.mli:

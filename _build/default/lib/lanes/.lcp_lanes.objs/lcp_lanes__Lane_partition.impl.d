lib/lanes/lane_partition.ml: Array Format Lcp_graph Lcp_interval List Printf String

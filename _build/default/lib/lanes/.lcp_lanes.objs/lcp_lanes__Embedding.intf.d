lib/lanes/embedding.mli: Lcp_graph

lib/lanes/embedding.ml: Hashtbl Lcp_graph List Option Printf

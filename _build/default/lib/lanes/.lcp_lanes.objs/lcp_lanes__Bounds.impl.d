lib/lanes/bounds.ml:

lib/lanes/low_congestion.ml: Array Completion Embedding Hashtbl Lane_partition Lcp_graph Lcp_interval List

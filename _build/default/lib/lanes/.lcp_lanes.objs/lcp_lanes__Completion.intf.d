lib/lanes/completion.mli: Lane_partition Lcp_graph

lib/lanes/lane_partition.mli: Format Lcp_interval

module Graph = Lcp_graph.Graph

type t = (Graph.edge * int list) list

let path_of t e =
  let e = Graph.canonical_edge (fst e) (snd e) in
  List.assoc_opt e t

let validate g required t =
  let check_path (u, v) path =
    match path with
    | [] -> Error (Printf.sprintf "edge %d-%d: empty path" u v)
    | first :: _ ->
        let last = List.nth path (List.length path - 1) in
        if not ((first = u && last = v) || (first = v && last = u)) then
          Error (Printf.sprintf "edge %d-%d: path endpoints %d,%d" u v first last)
        else if List.length (List.sort_uniq compare path) <> List.length path
        then Error (Printf.sprintf "edge %d-%d: path not simple" u v)
        else begin
          let rec steps = function
            | a :: (b :: _ as rest) ->
                if Graph.mem_edge g a b then steps rest
                else
                  Error
                    (Printf.sprintf "edge %d-%d: step %d-%d not a base edge" u v
                       a b)
            | [] | [ _ ] -> Ok ()
          in
          steps path
        end
  in
  let rec go = function
    | [] -> Ok ()
    | e :: rest -> (
        match path_of t e with
        | None ->
            Error
              (Printf.sprintf "edge %d-%d has no embedded path" (fst e) (snd e))
        | Some p -> ( match check_path e p with Ok () -> go rest | err -> err))
  in
  go required

let loop_erase walk =
  (* keep a stack of the simple prefix; on a repeat, pop back to the first
     occurrence *)
  let rec go stack = function
    | [] -> List.rev stack
    | v :: rest ->
        if List.mem v stack then
          let rec pop = function
            | w :: tl when w <> v -> pop tl
            | s -> s
          in
          go (pop stack) rest
        else go (v :: stack) rest
  in
  go [] walk

let edge_loads g t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (_, path) ->
      let rec steps = function
        | a :: (b :: _ as rest) ->
            if not (Graph.mem_edge g a b) then
              invalid_arg "Embedding.edge_loads: path step not a base edge";
            let e = Graph.canonical_edge a b in
            Hashtbl.replace tbl e
              (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e));
            steps rest
        | [] | [ _ ] -> ()
      in
      steps path)
    t;
  Hashtbl.fold (fun e c acc -> (e, c) :: acc) tbl [] |> List.sort compare

let congestion g t =
  List.fold_left (fun acc (_, c) -> max acc c) 0 (edge_loads g t)

let rec f k =
  if k < 1 then invalid_arg "Bounds.f: need k >= 1";
  if k = 1 then 1 else 2 + (2 * (k - 1) * f (k - 1))

let rec g k =
  if k < 1 then invalid_arg "Bounds.g: need k >= 1";
  if k = 1 then 0 else 2 + g (k - 1) + (2 * k * f (k - 1))

let h k = g k + f k - 1

(** The bound functions of Proposition 4.6.

    For an interval representation of width k, the construction produces at
    most [f k] lanes, embeds the weak completion with congestion at most
    [g k], and the completion with congestion at most [h k]:

    - f 1 = 1,  f k = 2 + 2(k-1)·f(k-1)
    - g 1 = 0,  g k = 2 + g(k-1) + 2k·f(k-1)
    - h k = g k + f k - 1 *)

val f : int -> int
val g : int -> int
val h : int -> int

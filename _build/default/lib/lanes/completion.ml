module Graph = Lcp_graph.Graph
module Representation = Lcp_interval.Representation

let e1_edges p =
  Lane_partition.lanes p |> Array.to_list
  |> List.concat_map (fun lane ->
         let rec pairs = function
           | a :: (b :: _ as rest) -> Graph.canonical_edge a b :: pairs rest
           | [] | [ _ ] -> []
         in
         pairs lane)

let e2_edges p =
  let rec pairs = function
    | a :: (b :: _ as rest) -> Graph.canonical_edge a b :: pairs rest
    | [] | [ _ ] -> []
  in
  pairs (Lane_partition.first_vertices p)

let base_graph p = Representation.graph (Lane_partition.rep p)

let weak_completion p = Graph.add_edges (base_graph p) (e1_edges p)

let completion p =
  Graph.add_edges (base_graph p) (e1_edges p @ e2_edges p)

let missing p es =
  let g = base_graph p in
  List.filter (fun (u, v) -> not (Graph.mem_edge g u v)) es
  |> List.sort_uniq compare

let new_edges_weak p = missing p (e1_edges p)
let new_edges_full p = missing p (e1_edges p @ e2_edges p)

(** k-lane partitions (Def 4.2): a partition of the vertex set into
    non-empty sequences, each strictly ordered by [≺] on the vertices'
    intervals. *)

type t = private {
  rep : Lcp_interval.Representation.t;
  lanes : int list array;
}

val make : Lcp_interval.Representation.t -> int list array -> t
(** Validates; raises [Invalid_argument] with a diagnostic. *)

val validate :
  Lcp_interval.Representation.t -> int list array -> (unit, string) result

val of_greedy_coloring : Lcp_interval.Representation.t -> t
(** The Observation 4.3 partition: greedy interval coloring of all vertex
    intervals; uses at most [width] lanes. Not the Prop 4.6 partition — it
    has no congestion guarantee — but valid and useful for tests. *)

val rep : t -> Lcp_interval.Representation.t
val lanes : t -> int list array
val lane_count : t -> int
val lane_of : t -> int -> int
(** Lane index of a vertex. *)

val first_vertices : t -> int list
(** The initial vertex of each lane, in lane order. *)

val pp : Format.formatter -> t -> unit

(** Completions of a lane partition (Def 4.4).

    [E1] turns each lane into a path (consecutive vertices of the lane),
    [E2] concatenates the initial vertices of all lanes into a path. The
    weak completion adds [E1]; the completion adds [E1 ∪ E2]. *)

val e1_edges : Lane_partition.t -> Lcp_graph.Graph.edge list
val e2_edges : Lane_partition.t -> Lcp_graph.Graph.edge list

val weak_completion : Lane_partition.t -> Lcp_graph.Graph.t
val completion : Lane_partition.t -> Lcp_graph.Graph.t

val new_edges_weak : Lane_partition.t -> Lcp_graph.Graph.edge list
(** [E1 \ E]: the edges the weak completion adds that are not already in the
    graph — exactly the edges an embedding must route. *)

val new_edges_full : Lane_partition.t -> Lcp_graph.Graph.edge list
(** [(E1 ∪ E2) \ E]. *)

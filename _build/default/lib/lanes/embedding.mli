(** Embeddings of a supergraph into a graph (Def 4.5): each added edge
    [{u,v}] is realized as a u–v path in the base graph. The congestion is
    the maximum number of embedded paths through a single base edge.

    Prop 4.6's payoff (§4.1): a b-bit edge-labeling scheme on the completion
    G' can be simulated on G at cost O(b·c) bits per edge, c the congestion,
    by copying the label of each virtual edge onto every edge of its path. *)

type t = (Lcp_graph.Graph.edge * int list) list
(** Association list: virtual edge ↦ its path (vertex sequence; endpoints
    must match the edge, in either order). *)

val validate :
  Lcp_graph.Graph.t -> Lcp_graph.Graph.edge list -> t -> (unit, string) result
(** Checks every required edge has a path, every path is a simple path of
    the base graph with the right endpoints. *)

val congestion : Lcp_graph.Graph.t -> t -> int
(** Max paths per base edge; raises [Invalid_argument] if a step of a path
    is not a base edge. *)

val edge_loads : Lcp_graph.Graph.t -> t -> (Lcp_graph.Graph.edge * int) list
(** Per-edge path counts, only edges with non-zero load, sorted. *)

val path_of : t -> Lcp_graph.Graph.edge -> int list option

val loop_erase : int list -> int list
(** Shortcut a walk into a simple path with the same endpoints: whenever a
    vertex repeats, the cycle between its occurrences is removed. Every
    step of the result is a step of the input, so replacing a walk by its
    loop erasure never increases congestion. *)

(** The low-congestion lane-partition construction (Proposition 4.6).

    Given an interval representation [I] of a connected graph G with width
    k, produce a w-lane partition [P] with w ≤ f(k) such that the weak
    completion of (G, I, P) embeds into G with congestion ≤ g(k) and the
    completion with congestion ≤ h(k).

    The construction follows the paper's induction: pick the extreme
    vertices v_st (min left endpoint) and v_ed (max right endpoint), a
    v_st–v_ed path P, and the greedy spine sequence S along P (each next
    spine vertex maximizes the right endpoint among later path vertices
    whose interval meets the current one). S splits into lanes S₁
    (odd-indexed) and S₂ (even-indexed); the components of G − S have
    width ≤ k−1 and are colored into classes of pairwise-disjoint hulls
    (Lemma 4.10), recursed on, and their lanes concatenated. Lane edges are
    embedded through P and through component-to-spine attachment edges
    exactly as in Cases 1, 2.1, 2.2 of the proof. *)

type spine = {
  v_st : int;
  v_ed : int;
  path : int list;  (** the chosen v_st–v_ed path P *)
  s_seq : int list;  (** the spine sequence S = s₁, s₂, … *)
}

type result = {
  partition : Lane_partition.t;
  weak_embedding : Embedding.t;
      (** paths for every edge of [Completion.new_edges_weak] *)
  full_embedding : Embedding.t;
      (** paths for every edge of [Completion.new_edges_full] *)
  spine : spine;  (** top-level construction data (figure demos) *)
}

val construct : Lcp_interval.Representation.t -> result
(** Raises [Invalid_argument] if the graph is empty or disconnected. *)

val congestion_weak : result -> int
val congestion_full : result -> int
val lane_count : result -> int

module Representation = Lcp_interval.Representation
module Interval = Lcp_interval.Interval
module Graph = Lcp_graph.Graph

type t = {
  rep : Representation.t;
  lanes : int list array;
}

let validate rep lanes =
  let n = Graph.n (Representation.graph rep) in
  let seen = Array.make n 0 in
  let problem = ref None in
  Array.iteri
    (fun li lane ->
      (match lane with
      | [] -> problem := Some (Printf.sprintf "lane %d is empty" li)
      | _ -> ());
      List.iter
        (fun v ->
          if v < 0 || v >= n then
            problem := Some (Printf.sprintf "lane %d: vertex %d out of range" li v)
          else seen.(v) <- seen.(v) + 1)
        lane;
      let rec ordered = function
        | [] | [ _ ] -> ()
        | a :: (b :: _ as rest) ->
            if
              not
                (Interval.strictly_before
                   (Representation.interval rep a)
                   (Representation.interval rep b))
            then
              problem :=
                Some
                  (Printf.sprintf
                     "lane %d: intervals of %d and %d not strictly ordered" li a b)
            else ordered rest
      in
      ordered lane)
    lanes;
  (match !problem with
  | None ->
      Array.iteri
        (fun v c ->
          if c <> 1 then
            problem :=
              Some (Printf.sprintf "vertex %d appears in %d lanes" v c))
        seen
  | Some _ -> ());
  match !problem with None -> Ok () | Some msg -> Error msg

let make rep lanes =
  match validate rep lanes with
  | Ok () -> { rep; lanes = Array.map (fun l -> l) lanes }
  | Error msg -> invalid_arg ("Lane_partition.make: " ^ msg)

let of_greedy_coloring rep =
  let ivs = Representation.intervals rep in
  let lane, lanes = Lcp_interval.Interval_coloring.color ivs in
  let out = Array.make lanes [] in
  Array.iteri (fun v l -> out.(l) <- v :: out.(l)) lane;
  let by_left vs =
    List.sort
      (fun a b ->
        Interval.compare_by_left
          (Representation.interval rep a)
          (Representation.interval rep b))
      vs
  in
  make rep (Array.map by_left out)

let rep t = t.rep
let lanes t = Array.map (fun l -> l) t.lanes
let lane_count t = Array.length t.lanes

let lane_of t v =
  let found = ref (-1) in
  Array.iteri (fun li lane -> if List.mem v lane then found := li) t.lanes;
  if !found < 0 then invalid_arg "Lane_partition.lane_of: unknown vertex";
  !found

let first_vertices t =
  Array.to_list t.lanes
  |> List.map (function
       | v :: _ -> v
       | [] -> invalid_arg "Lane_partition.first_vertices: empty lane")

let pp ppf t =
  Array.iteri
    (fun li lane ->
      Format.fprintf ppf "lane %d: %s@." li
        (String.concat " -> " (List.map string_of_int lane)))
    t.lanes

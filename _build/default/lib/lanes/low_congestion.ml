module Graph = Lcp_graph.Graph
module Traversal = Lcp_graph.Traversal
module Interval = Lcp_interval.Interval
module Representation = Lcp_interval.Representation
module Interval_coloring = Lcp_interval.Interval_coloring

type spine = {
  v_st : int;
  v_ed : int;
  path : int list;
  s_seq : int list;
}

type result = {
  partition : Lane_partition.t;
  weak_embedding : Embedding.t;
  full_embedding : Embedding.t;
  spine : spine;
}

(* --- helpers ------------------------------------------------------------ *)

let argbest better f = function
  | [] -> invalid_arg "Low_congestion.argbest: empty"
  | x :: xs ->
      List.fold_left (fun best y -> if better (f y) (f best) then y else best) x xs

(* subpath of [path] between two member vertices, inclusive, in either
   direction *)
let subpath path a b =
  let arr = Array.of_list path in
  let pos v =
    let p = ref (-1) in
    Array.iteri (fun i x -> if x = v then p := i) arr;
    if !p < 0 then invalid_arg "Low_congestion.subpath: vertex not on path";
    !p
  in
  let pa = pos a and pb = pos b in
  if pa <= pb then Array.to_list (Array.sub arr pa (pb - pa + 1))
  else List.rev (Array.to_list (Array.sub arr pb (pa - pb + 1)))

let last_of lst = List.nth lst (List.length lst - 1)

(* --- the spine sequence S ----------------------------------------------- *)

let build_spine rep =
  let g = Representation.graph rep in
  let vertices = List.init (Graph.n g) (fun v -> v) in
  let left v = Interval.l (Representation.interval rep v) in
  let right v = Interval.r (Representation.interval rep v) in
  let v_st = argbest ( < ) left vertices in
  let v_ed = argbest ( > ) right vertices in
  let path =
    match Traversal.shortest_path g v_st v_ed with
    | Some p -> p
    | None -> invalid_arg "Low_congestion: graph is disconnected"
  in
  let path_arr = Array.of_list path in
  let npath = Array.length path_arr in
  let pos_in_path = Hashtbl.create npath in
  Array.iteri (fun i v -> Hashtbl.replace pos_in_path v i) path_arr;
  let rec extend s cur =
    if right cur >= right v_ed then List.rev s
    else begin
      let cur_pos = Hashtbl.find pos_in_path cur in
      let candidates = ref [] in
      for i = cur_pos + 1 to npath - 1 do
        let u = path_arr.(i) in
        if
          Interval.intersects
            (Representation.interval rep u)
            (Representation.interval rep cur)
        then candidates := u :: !candidates
      done;
      match !candidates with
      | [] ->
          invalid_arg
            "Low_congestion.build_spine: no candidate (disconnected path?)"
      | cs ->
          let next = argbest ( > ) right cs in
          if right next <= right cur then
            invalid_arg "Low_congestion.build_spine: spine not advancing";
          extend (next :: s) next
    end
  in
  let s_seq = extend [ v_st ] v_st in
  { v_st; v_ed; path; s_seq }

let split_alternating s_seq =
  let rec go i = function
    | [] -> ([], [])
    | x :: rest ->
        let odd, even = go (i + 1) rest in
        if i mod 2 = 0 then (x :: odd, even) else (odd, x :: even)
  in
  go 0 s_seq

(* --- the recursive construction ----------------------------------------- *)

(* Returns lanes (global vertex ids of [rep]'s graph; empty lanes allowed
   internally) and the weak-completion embedding (paths in global ids). *)
let rec construct_rec rep =
  let g = Representation.graph rep in
  let n = Graph.n g in
  if n = 0 then invalid_arg "Low_congestion: empty graph";
  if n = 1 then ([| [ 0 ] |], [], None)
  else begin
    let spine = build_spine rep in
    let s1, s2 = split_alternating spine.s_seq in
    let s_set = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace s_set v ()) spine.s_seq;
    let rest = List.filter (fun v -> not (Hashtbl.mem s_set v))
        (List.init n (fun v -> v))
    in
    (* connected components of G - S, as global vertex lists *)
    let components =
      if rest = [] then []
      else begin
        let sub, back = Graph.induced g rest in
        Traversal.connected_components sub
        |> List.map (fun comp -> List.map (fun v -> back.(v)) comp)
      end
    in
    let components = Array.of_list components in
    let ncomp = Array.length components in
    (* Lemma 4.10: color components so same-color hulls are disjoint *)
    let hulls =
      Array.map (fun comp -> Representation.hull_of rep comp) components
    in
    let color, ncolors = Interval_coloring.color hulls in
    (* split by spine side: an attachment edge (u in C, v in S1) makes C a
       class-1 component; otherwise it attaches to S2 (G is connected) *)
    let s1_set = Hashtbl.create 16 and s2_set = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace s1_set v ()) s1;
    List.iter (fun v -> Hashtbl.replace s2_set v ()) s2;
    let attachment comp =
      (* (side, u_star in C, v_star in S_side) *)
      let find side_set =
        List.find_map
          (fun u ->
            List.find_map
              (fun v ->
                if Hashtbl.mem side_set v then Some (u, v) else None)
              (Graph.neighbors g u))
          comp
      in
      match find s1_set with
      | Some (u, v) -> (1, u, v)
      | None -> (
          match find s2_set with
          | Some (u, v) -> (2, u, v)
          | None ->
              invalid_arg
                "Low_congestion: component not attached to the spine")
    in
    let attach = Array.map attachment components in
    (* recurse on each component *)
    let sub_results =
      Array.map
        (fun comp ->
          let sub_rep, back = Representation.restrict rep comp in
          let lanes, emb, _ = construct_rec sub_rep in
          let to_global v = back.(v) in
          let lanes = Array.map (List.map to_global) lanes in
          let emb =
            List.map
              (fun ((u, v), p) ->
                ( Graph.canonical_edge (to_global u) (to_global v),
                  List.map to_global p ))
              emb
          in
          (lanes, emb))
        components
    in
    let max_sub_lanes =
      Array.fold_left (fun acc (lanes, _) -> max acc (Array.length lanes)) 0
        sub_results
    in
    (* assemble the output lanes: S1, S2, then one lane per (color, side,
       sub-lane index), concatenating component lanes in hull order *)
    let lanes_acc = ref [] in
    let emb_acc = ref [] in
    let add_lane l = lanes_acc := l :: !lanes_acc in
    add_lane s1;
    add_lane s2;
    (* Case 1: spine lanes embed through P *)
    let embed_spine_lane lane =
      let rec pairs = function
        | a :: (b :: _ as rest) ->
            if not (Graph.mem_edge g a b) then begin
              let e = Graph.canonical_edge a b in
              emb_acc := (e, subpath spine.path a b) :: !emb_acc
            end;
            pairs rest
        | [] | [ _ ] -> ()
      in
      pairs lane
    in
    embed_spine_lane s1;
    embed_spine_lane s2;
    (* Case 2.1: component-internal embeddings *)
    Array.iter (fun (_, emb) -> emb_acc := emb @ !emb_acc) sub_results;
    (* Case 2 lanes and Case 2.2 cross-component embeddings *)
    let comp_hull_left c = Interval.l hulls.(c) in
    for i = 0 to ncolors - 1 do
      for j = 1 to 2 do
        let comps_ij =
          List.init ncomp (fun c -> c)
          |> List.filter (fun c ->
                 color.(c) = i
                 && (let side, _, _ = attach.(c) in
                     side = j))
          |> List.sort (fun a b -> compare (comp_hull_left a) (comp_hull_left b))
        in
        for ell = 0 to max_sub_lanes - 1 do
          let pieces =
            List.filter_map
              (fun c ->
                let lanes, _ = sub_results.(c) in
                if ell < Array.length lanes && lanes.(ell) <> [] then
                  Some (c, lanes.(ell))
                else None)
              comps_ij
          in
          add_lane (List.concat_map snd pieces);
          (* cross-component edges between consecutive pieces *)
          let rec cross = function
            | (c, lane_c) :: ((c', lane_c') :: _ as rest) ->
                let x = last_of lane_c and y = List.hd lane_c' in
                if not (Graph.mem_edge g x y) then begin
                  let _, u_star, v_star = attach.(c) in
                  let _, u_star', v_star' = attach.(c') in
                  let in_comp comp a b =
                    let sub, back = Graph.induced g comp in
                    let fwd = Hashtbl.create 16 in
                    Array.iteri (fun li gl -> Hashtbl.replace fwd gl li) back;
                    match
                      Traversal.shortest_path sub (Hashtbl.find fwd a)
                        (Hashtbl.find fwd b)
                    with
                    | Some p -> List.map (fun v -> back.(v)) p
                    | None ->
                        invalid_arg "Low_congestion: component disconnected"
                  in
                  let seg1 = in_comp components.(c) x u_star in
                  let seg2 = subpath spine.path v_star v_star' in
                  let seg3 = in_comp components.(c') u_star' y in
                  let e = Graph.canonical_edge x y in
                  (* the concatenation is a walk: P may pass through
                     component vertices, so the segments can collide;
                     loop-erase to a simple path (congestion only drops) *)
                  emb_acc :=
                    (e, Embedding.loop_erase (seg1 @ seg2 @ seg3)) :: !emb_acc
                end;
                cross rest
            | [] | [ _ ] -> ()
          in
          cross pieces
        done
      done
    done;
    let lanes = Array.of_list (List.rev !lanes_acc) in
    (!emb_acc |> List.rev |> fun emb -> (lanes, emb, Some spine))
  end

let construct rep =
  let g = Representation.graph rep in
  if Graph.n g = 0 then invalid_arg "Low_congestion.construct: empty graph";
  if not (Traversal.is_connected g) then
    invalid_arg "Low_congestion.construct: disconnected graph";
  let lanes, weak_embedding, spine_opt = construct_rec rep in
  let lanes = Array.of_list (List.filter (fun l -> l <> []) (Array.to_list lanes)) in
  let partition = Lane_partition.make rep lanes in
  (* complete the lanes: embed the E2 edges along arbitrary (shortest)
     paths; adds at most (lane count - 1) congestion *)
  let e2_paths =
    Completion.e2_edges partition
    |> List.filter_map (fun (a, b) ->
           if Graph.mem_edge g a b then None
           else
             match Traversal.shortest_path g a b with
             | Some p -> Some (Graph.canonical_edge a b, p)
             | None -> None)
  in
  let full_embedding = weak_embedding @ e2_paths in
  let spine =
    match spine_opt with
    | Some s -> s
    | None -> { v_st = 0; v_ed = 0; path = [ 0 ]; s_seq = [ 0 ] }
  in
  { partition; weak_embedding; full_embedding; spine }

let congestion_weak r =
  Embedding.congestion
    (Representation.graph (Lane_partition.rep r.partition))
    r.weak_embedding

let congestion_full r =
  Embedding.congestion
    (Representation.graph (Lane_partition.rep r.partition))
    r.full_embedding

let lane_count r = Lane_partition.lane_count r.partition

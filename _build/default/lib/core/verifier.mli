(** The local verification algorithm V of Theorem 1 (§6.2).

    A pure function of the vertex's local view (its identifier and the
    multiset of labels on its incident edges — nothing else). The checks,
    following Lemmas 6.4/6.5 and the embedding certification of §6.2:

    - the global pointer labels form a valid Prop 2.2 pointer;
    - transported virtual-edge records form simple paths with consecutive
      ranks and consistent payloads; records naming this vertex make it an
      endpoint of the virtual edge, which then joins its G'-edge set;
    - every G'-edge (real or virtual) carries a well-shaped frame stack of
      bounded depth (Obs 5.5) whose lane indices are bounded;
    - all frames of the same hierarchy node agree;
    - E-/P-node members match the local topology (edge counts per claimed
      terminal position, realness masks);
    - every B-node class equals f_B of its parts, with V-node parts
      certified by per-node pointer sub-labels, and bridge endpoints
      checking the bridge edge;
    - every Tree-merge class equals the f_P fold of its member and
      children, with junction vertices checking that claimed children
      actually attach to them;
    - vertices of the root member check that the root class is accepting,
      and the pointer target is a root-member vertex. *)

module Make (A : Lcp_algebra.Algebra_sig.S) : sig
  val verify :
    max_lanes:int ->
    A.state Certificate.label Lcp_pls.Scheme.edge_view ->
    (unit, string) result
end

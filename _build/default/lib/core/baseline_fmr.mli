(** The O(log² n)-bit baseline, in the style of Fraigniaud–Montealegre–
    Rapaport–Todinca (Algorithmica 2024): certify the Courcelle dynamic
    program over a balanced binary division of the path decomposition.

    Every vertex carries one record per level of a balanced binary tree
    over the bag sequence (depth ⌈log₂ n⌉). A segment's record holds its
    homomorphism class with the ≤ 2(k+1) segment-boundary vertices as
    slots, plus both children's records, so each vertex can recompute every
    composition on its root-to-leaf path; leaves carry their bag and its
    assigned edges. Labels are Θ(log n) bits per level and Θ(log² n) bits
    in total for fixed k — the label-size gap to Theorem 1's O(log n) is
    exactly what experiment E1 measures.

    The verifier checks interval validity against neighbors, position and
    bag membership, record agreement between neighbors sharing segments,
    bit-for-bit recomputation of every composition on the vertex's path,
    leaf edge-list consistency with the vertex's actual incident edges, and
    acceptance at the root. (This reproduces the baseline's label-size
    shape and its completeness; the soundness argument of the original
    paper relies on further machinery that is out of scope here — see
    DESIGN.md.) *)

module Make (A : Lcp_algebra.Algebra_sig.S) : sig
  type segment = {
    lo : int;
    hi : int;
    boundary : int list;  (** segment-boundary vertex ids, sorted *)
    state : A.state;
  }

  type level = {
    seg : segment;
    left : segment option;  (** children, absent at leaves *)
    right : segment option;
  }

  type leaf_data = {
    bag : int list;  (** ids of the leaf bag *)
    bag_edges : (int * int) list;  (** edges assigned to this bag, by id *)
  }

  type label = {
    interval : int * int;
    pos : int;  (** position of this vertex in the left-endpoint order *)
    levels : level list;  (** root first *)
    leaf : leaf_data;
    accepted : bool;
  }

  val scheme :
    ?rep:(Lcp_pls.Config.t -> Lcp_interval.Representation.t option) ->
    k:int ->
    unit ->
    label Lcp_pls.Scheme.vertex_scheme
end

(** Coarse taxonomy over verifier rejection reasons.

    Every verifier in the system rejects with a structured message prefix
    ("stack: …", "transport: …", "pointer: …", "fmr: …", …). The
    fault-injection campaign ({!Faultsim}) aggregates rejections by the
    slug this module assigns, turning free-form reasons into a stable
    matrix axis without coupling the campaign to exact message texts. *)

val classify : string -> string
(** Map one rejection reason to its taxonomy slug; ["other"] when no
    known prefix matches. *)

val slugs : string list
(** Every slug {!classify} can produce, ["other"] last. *)

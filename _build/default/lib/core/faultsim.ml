(* The adversarial soundness campaign: sweep generators x schemes x fault
   models over seeded trials, classify every injected fault, drive
   recovery, and aggregate the soundness matrix (see EXPERIMENTS.md §E5).

   Faults are transient (Korman–Kutten–Peleg): detection runs first in
   the faulty world (silent processors raise no alarm, forged ids are in
   force) and, if the fault masked every alarm, once more in the honest
   world after the fault has ceased — that second round must catch every
   effective fault, so the campaign's escape counter stays at zero unless
   a scheme's soundness (or the network simulation itself) regresses. *)

module Graph = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Rep = Lcp_interval.Representation
module PLS = Lcp_pls
module S = PLS.Scheme
module N = PLS.Network
module F = PLS.Fault
module A = Lcp_algebra
module T1conn = Theorem1.Make (A.Connectivity)
module T1acy = Theorem1.Make (A.Acyclicity)
module Fconn = Baseline_fmr.Make (A.Connectivity)

(* ------------------------------------------------------------------ *)
(* the scheme roster *)

type armed =
  | Edge : 'l S.edge_scheme * 'l F.codec option -> armed
  | Vertex : 'l S.vertex_scheme * 'l F.codec option -> armed

type instance = {
  i_name : string;
  arm : Random.State.t -> PLS.Config.t * armed;
      (* one fresh trial: a random configuration plus the scheme (and
         label codec, when the scheme has one) to attack on it *)
}

let conn_codec =
  {
    F.c_encode = (fun w l -> Certificate.encode ~encode_state:A.Connectivity.encode w l);
    F.c_decode = (fun r -> Certificate.decode ~decode_state:A.Connectivity.decode r);
  }

let acy_codec =
  {
    F.c_encode = (fun w l -> Certificate.encode ~encode_state:A.Acyclicity.encode w l);
    F.c_decode = (fun r -> Certificate.decode ~decode_state:A.Acyclicity.decode r);
  }

let pointer_codec =
  { F.c_encode = PLS.Spanning_tree.encode; F.c_decode = PLS.Spanning_tree.decode }

let universal_codec =
  { F.c_encode = PLS.Universal.encode; F.c_decode = PLS.Universal.decode }

let bipartite_codec =
  {
    F.c_encode = PLS.Bipartite_scheme.encode;
    F.c_decode = PLS.Bipartite_scheme.decode;
  }

let random_rep rng ?extra_edge_prob () =
  let k = 1 + Random.State.int rng 2 in
  let n = 8 + Random.State.int rng 9 in
  let g, ivs = Gen.random_pathwidth rng ~n ~k ?extra_edge_prob () in
  let rep = Rep.of_pairs g ivs in
  (k, g, fun _ -> Some rep)

let instances =
  [
    {
      i_name = "theorem1-connectivity";
      arm =
        (fun rng ->
          let k, g, rep = random_rep rng () in
          let cfg = PLS.Config.random_ids rng g in
          (cfg, Edge (T1conn.edge_scheme ~rep ~k (), Some conn_codec)));
    };
    {
      i_name = "theorem1-acyclicity";
      arm =
        (fun rng ->
          (* extra_edge_prob 0 makes the generator emit trees *)
          let k, g, rep = random_rep rng ~extra_edge_prob:0.0 () in
          let cfg = PLS.Config.random_ids rng g in
          (cfg, Edge (T1acy.edge_scheme ~rep ~k (), Some acy_codec)));
    };
    {
      i_name = "fmr-connectivity";
      arm =
        (fun rng ->
          let k, g, rep = random_rep rng () in
          let cfg = PLS.Config.random_ids rng g in
          (cfg, Vertex (Fconn.scheme ~rep ~k (), None)));
    };
    {
      i_name = "spanning-tree-pointer";
      arm =
        (fun rng ->
          let n = 8 + Random.State.int rng 9 in
          let g, _ = Gen.random_pathwidth rng ~n ~k:2 () in
          let cfg = PLS.Config.random_ids rng g in
          let scheme = PLS.Spanning_tree.scheme ~target:(PLS.Config.id cfg 0) in
          (cfg, Edge (scheme, Some pointer_codec)));
    };
    {
      i_name = "bipartite-1bit";
      arm =
        (fun rng ->
          let dim () = 2 + Random.State.int rng 3 in
          let g =
            match Random.State.int rng 3 with
            | 0 -> Gen.grid (dim ()) (dim ())
            | 1 -> Gen.cycle (2 * (3 + Random.State.int rng 5))
            | _ -> Gen.complete_bipartite (dim ()) (dim ())
          in
          let cfg = PLS.Config.random_ids rng g in
          (cfg, Vertex (PLS.Bipartite_scheme.scheme, Some bipartite_codec)));
    };
    {
      i_name = "universal";
      arm =
        (fun rng ->
          let n = 5 + Random.State.int rng 5 in
          let g, _ = Gen.random_pathwidth rng ~n ~k:2 () in
          let cfg = PLS.Config.random_ids rng g in
          let scheme =
            PLS.Universal.scheme ~name:"universal" ~property:(fun _ -> true)
          in
          (cfg, Vertex (scheme, Some universal_codec)));
    };
  ]

let scheme_names = List.map (fun i -> i.i_name) instances
let fault_names = List.map F.spec_name F.catalogue

let fault_of_name name =
  List.find_opt (fun s -> F.spec_name s = name) F.catalogue

(* ------------------------------------------------------------------ *)
(* one trial *)

type outcome =
  | Skipped
  | No_op
  | Legal
  | Caught of {
      latency : int;
      localized : bool;
      rounds : int;
      reasons : string list;
    }
  | Escape of string

let reasons_of t =
  List.filter_map
    (fun (_, v) -> match v with N.Reject m -> Some m | N.Accept -> None)
    t.N.verdicts

(* repair a detected fault: patch the rejecting region from the fresh
   (honest) proof and re-verify; reinstall globally when the patch does
   not convince the network *)
let recover_edge cfg scheme ~honest ~current region =
  let patched = N.patch_region cfg ~fresh:honest ~current ~region in
  if N.accepted (N.run_edge_round cfg scheme patched) then (true, 1)
  else (false, 2)

let recover_vertex cfg scheme ~honest ~current region =
  let patched =
    Array.mapi
      (fun v l -> if List.mem v region then Some honest.(v) else l)
      current
  in
  if N.accepted (N.run_vertex_partial cfg scheme patched) then (true, 1)
  else (false, 2)

let edge_trial rng cfg scheme codec spec =
  match scheme.S.es_prove cfg with
  | None -> Skipped
  | Some honest -> (
      if not (N.accepted (N.run_edge_round cfg scheme honest)) then
        Escape "honest certificate rejected (completeness failure)"
      else
        match F.inject_edge ~rng ?codec cfg scheme honest spec with
        | None -> Skipped
        | Some world -> (
            let current = world.F.ew_labels in
            match F.classify_edge cfg scheme ~honest world with
            | F.No_op -> No_op
            | F.Legal_rewrite ->
                (* the round simulation accepted the rewritten state; the
                   direct harness must agree or the simulation leaks *)
                if S.accepted (S.run_edge cfg scheme current) then Legal
                else Escape "round simulation and direct harness disagree"
            | F.Detected { latency; detectors; reasons } ->
                let localized, rounds =
                  recover_edge cfg scheme ~honest ~current detectors
                in
                Caught { latency; localized; rounds; reasons }
            | F.Undetected_effective -> (
                (* masked while the fault was live; the transient fault
                   ends and the next honest round must raise the alarm *)
                let t = N.run_edge_round cfg scheme current in
                if N.accepted t then Escape "effective fault never detected"
                else
                  let localized, rounds =
                    recover_edge cfg scheme ~honest ~current (N.rejectors t)
                  in
                  Caught
                    {
                      latency = 1 + t.N.rounds;
                      localized;
                      rounds;
                      reasons = reasons_of t;
                    })))

let vertex_trial rng cfg scheme codec spec =
  match scheme.S.vs_prove cfg with
  | None -> Skipped
  | Some honest -> (
      if not (N.accepted (N.run_vertex_round cfg scheme honest)) then
        Escape "honest certificate rejected (completeness failure)"
      else
        match F.inject_vertex ~rng ?codec cfg scheme honest spec with
        | None -> Skipped
        | Some world -> (
            let current = world.F.vw_labels in
            match F.classify_vertex cfg scheme ~honest world with
            | F.No_op -> No_op
            | F.Legal_rewrite ->
                if
                  Array.for_all Option.is_some current
                  && S.accepted
                       (S.run_vertex cfg scheme (Array.map Option.get current))
                then Legal
                else Escape "round simulation and direct harness disagree"
            | F.Detected { latency; detectors; reasons } ->
                let localized, rounds =
                  recover_vertex cfg scheme ~honest ~current detectors
                in
                Caught { latency; localized; rounds; reasons }
            | F.Undetected_effective -> (
                let t = N.run_vertex_partial cfg scheme current in
                if N.accepted t then Escape "effective fault never detected"
                else
                  let localized, rounds =
                    recover_vertex cfg scheme ~honest ~current (N.rejectors t)
                  in
                  Caught
                    {
                      latency = 1 + t.N.rounds;
                      localized;
                      rounds;
                      reasons = reasons_of t;
                    })))

(* ------------------------------------------------------------------ *)
(* the campaign *)

type cell = {
  c_scheme : string;
  c_fault : string;
  c_trials : int;
  c_injected : int;
  c_no_op : int;
  c_legal : int;
  c_detected : int;
  c_masked : int;
  c_latency_sum : int;
  c_localized : int;
  c_global : int;
  c_recovery_rounds : int;
  c_escapes : int;
}

type report = {
  cells : cell list;
  reasons : (string * int) list;
  schemes : int;
  fault_models : int;
  total_injected : int;
  total_effective : int;
  total_detected : int;
  total_escapes : int;
  escape_notes : (string * string * string) list;
}

let run ?(seed = 20250806) ?(trials = 30) ?schemes ?(faults = F.catalogue) ()
    =
  let selected =
    match schemes with
    | None -> instances
    | Some names -> List.filter (fun i -> List.mem i.i_name names) instances
  in
  if selected = [] then invalid_arg "Faultsim.run: no scheme selected";
  if faults = [] then invalid_arg "Faultsim.run: no fault model selected";
  let reason_tbl = Hashtbl.create 16 in
  let bump_reason m =
    let slug = Reject_reason.classify m in
    let c = try Hashtbl.find reason_tbl slug with Not_found -> 0 in
    Hashtbl.replace reason_tbl slug (c + 1)
  in
  let escape_notes = ref [] in
  let cells =
    List.concat_map
      (fun inst ->
        List.map
          (fun spec ->
            (* a cell-local seed: deterministic, independent of the order
               cells run in, distinct per (scheme, fault) *)
            let rng =
              Random.State.make
                [|
                  seed;
                  Hashtbl.hash inst.i_name;
                  Hashtbl.hash (F.spec_name spec);
                |]
            in
            let injected = ref 0 and no_op = ref 0 and legal = ref 0 in
            let detected = ref 0 and masked = ref 0 and latency_sum = ref 0 in
            let localized = ref 0 and global = ref 0 in
            let rec_rounds = ref 0 and escapes = ref 0 in
            for _ = 1 to trials do
              let cfg, armed = inst.arm rng in
              let outcome =
                match armed with
                | Edge (scheme, codec) -> edge_trial rng cfg scheme codec spec
                | Vertex (scheme, codec) ->
                    vertex_trial rng cfg scheme codec spec
              in
              match outcome with
              | Skipped -> ()
              | No_op ->
                  incr injected;
                  incr no_op
              | Legal ->
                  incr injected;
                  incr legal
              | Caught { latency; localized = loc; rounds; reasons } ->
                  incr injected;
                  incr detected;
                  latency_sum := !latency_sum + latency;
                  if latency > 1 then incr masked;
                  if loc then incr localized else incr global;
                  rec_rounds := !rec_rounds + rounds;
                  List.iter bump_reason reasons
              | Escape note ->
                  incr injected;
                  incr escapes;
                  escape_notes :=
                    (inst.i_name, F.spec_name spec, note) :: !escape_notes
            done;
            {
              c_scheme = inst.i_name;
              c_fault = F.spec_name spec;
              c_trials = trials;
              c_injected = !injected;
              c_no_op = !no_op;
              c_legal = !legal;
              c_detected = !detected;
              c_masked = !masked;
              c_latency_sum = !latency_sum;
              c_localized = !localized;
              c_global = !global;
              c_recovery_rounds = !rec_rounds;
              c_escapes = !escapes;
            })
          faults)
      selected
  in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 cells in
  let reasons =
    List.filter_map
      (fun slug ->
        match Hashtbl.find_opt reason_tbl slug with
        | Some c -> Some (slug, c)
        | None -> None)
      Reject_reason.slugs
  in
  {
    cells;
    reasons;
    schemes = List.length selected;
    fault_models = List.length faults;
    total_injected = sum (fun c -> c.c_injected);
    total_effective = sum (fun c -> c.c_detected + c.c_escapes);
    total_detected = sum (fun c -> c.c_detected);
    total_escapes = sum (fun c -> c.c_escapes);
    escape_notes = !escape_notes;
  }

(* ------------------------------------------------------------------ *)
(* the soundness matrix *)

let print_matrix r =
  Printf.printf "%-24s %-13s %4s %6s %6s %5s %5s %6s %6s %5s %5s %4s\n"
    "scheme" "fault" "inj" "no-op" "legal" "det" "mask" "rate" "lat~" "loc"
    "glob" "ESC";
  List.iter
    (fun c ->
      let effective = c.c_detected + c.c_escapes in
      let rate =
        if effective = 0 then 100.0
        else 100.0 *. float_of_int c.c_detected /. float_of_int effective
      in
      let lat =
        if c.c_detected = 0 then 0.0
        else float_of_int c.c_latency_sum /. float_of_int c.c_detected
      in
      Printf.printf "%-24s %-13s %4d %6d %6d %5d %5d %5.0f%% %6.2f %5d %5d %4d\n"
        c.c_scheme c.c_fault c.c_injected c.c_no_op c.c_legal c.c_detected
        c.c_masked rate lat c.c_localized c.c_global c.c_escapes)
    r.cells;
  Printf.printf
    "\nschemes: %d   fault models: %d   injected: %d   effective: %d   \
     detected: %d   escapes: %d\n"
    r.schemes r.fault_models r.total_injected r.total_effective
    r.total_detected r.total_escapes;
  Printf.printf "rejection taxonomy:";
  List.iter (fun (slug, c) -> Printf.printf "  %s=%d" slug c) r.reasons;
  print_newline ();
  if r.total_escapes > 0 then begin
    print_newline ();
    List.iter
      (fun (s, f, note) -> Printf.printf "ESCAPE  %s / %s: %s\n" s f note)
      r.escape_notes
  end

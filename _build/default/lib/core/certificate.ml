module Bitenc = Lcp_util.Bitenc

type 'state info = {
  node_id : int;
  lanes : int list;
  t_in : (int * int) list;
  t_out : (int * int) list;
  state : 'state;
}

type kind = KV | KE | KP | KB | KT

type 'state frame =
  | T_frame of {
      member : 'state info * kind;
      merged : 'state info;
      is_tree_root : bool;
      member_real : bool list;
      children : (int * 'state info) list;
    }
  | B_frame of {
      bnode : 'state info;
      i : int;
      j : int;
      left : 'state info * kind;
      right : 'state info * kind;
      bridge_real : bool;
      left_root_member : int option;
      right_root_member : int option;
      position : [ `Bridge | `Left | `Right ];
      left_ptr : Lcp_pls.Spanning_tree.label option;
      right_ptr : Lcp_pls.Spanning_tree.label option;
    }

type 'state vrecord = {
  vu : int;
  vv : int;
  rank_fwd : int;
  rank_bwd : int;
  vframes : 'state frame list;
}

type 'state label = {
  frames : 'state frame list;
  global_ptr : Lcp_pls.Spanning_tree.label;
  accept_state : bool;
  transported : 'state vrecord list;
}

let kind_code = function KV -> 0 | KE -> 1 | KP -> 2 | KB -> 3 | KT -> 4

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | KV -> "V"
    | KE -> "E"
    | KP -> "P"
    | KB -> "B"
    | KT -> "T")

let encode_lane_map w m =
  Bitenc.varint w (List.length m);
  List.iter
    (fun (lane, v) ->
      Bitenc.varint w lane;
      Bitenc.varint w v)
    m

let encode_info encode_state w info =
  Bitenc.varint w info.node_id;
  Bitenc.varint w (List.length info.lanes);
  List.iter (fun l -> Bitenc.varint w l) info.lanes;
  encode_lane_map w info.t_in;
  encode_lane_map w info.t_out;
  encode_state w info.state

let encode_ptr w (p : Lcp_pls.Spanning_tree.label) =
  Bitenc.varint w p.Lcp_pls.Spanning_tree.target;
  match p.Lcp_pls.Spanning_tree.parent with
  | None -> Bitenc.bit w false
  | Some (d, c) ->
      Bitenc.bit w true;
      Bitenc.varint w d;
      Bitenc.varint w c

let encode_frame encode_state w frame =
  match frame with
  | T_frame { member = minfo, mkind; merged; is_tree_root; member_real; children }
    ->
      Bitenc.bit w false;
      encode_info encode_state w minfo;
      Bitenc.bits w ~width:3 (kind_code mkind);
      encode_info encode_state w merged;
      Bitenc.bit w is_tree_root;
      Bitenc.varint w (List.length member_real);
      List.iter (fun b -> Bitenc.bit w b) member_real;
      Bitenc.varint w (List.length children);
      List.iter
        (fun (nid, cinfo) ->
          Bitenc.varint w nid;
          encode_info encode_state w cinfo)
        children
  | B_frame
      {
        bnode;
        i;
        j;
        left = linfo, lkind;
        right = rinfo, rkind;
        bridge_real;
        left_root_member;
        right_root_member;
        position;
        left_ptr;
        right_ptr;
      } ->
      Bitenc.bit w true;
      encode_info encode_state w bnode;
      Bitenc.varint w i;
      Bitenc.varint w j;
      encode_info encode_state w linfo;
      Bitenc.bits w ~width:3 (kind_code lkind);
      encode_info encode_state w rinfo;
      Bitenc.bits w ~width:3 (kind_code rkind);
      Bitenc.bit w bridge_real;
      let opt_int = function
        | None -> Bitenc.bit w false
        | Some x ->
            Bitenc.bit w true;
            Bitenc.varint w x
      in
      opt_int left_root_member;
      opt_int right_root_member;
      Bitenc.bits w ~width:2
        (match position with `Bridge -> 0 | `Left -> 1 | `Right -> 2);
      let opt_ptr = function
        | None -> Bitenc.bit w false
        | Some p ->
            Bitenc.bit w true;
            encode_ptr w p
      in
      opt_ptr left_ptr;
      opt_ptr right_ptr

let encode ~encode_state w label =
  Bitenc.varint w (List.length label.frames);
  List.iter (encode_frame encode_state w) label.frames;
  encode_ptr w label.global_ptr;
  Bitenc.bit w label.accept_state;
  Bitenc.varint w (List.length label.transported);
  List.iter
    (fun v ->
      Bitenc.varint w v.vu;
      Bitenc.varint w v.vv;
      Bitenc.varint w v.rank_fwd;
      Bitenc.varint w v.rank_bwd;
      Bitenc.varint w (List.length v.vframes);
      List.iter (encode_frame encode_state w) v.vframes)
    label.transported

(* List.init applies its function in unspecified order; decoding must read
   strictly left to right *)
let rec read_n n f = if n <= 0 then [] else
  let x = f () in
  x :: read_n (n - 1) f

let decode_lane_map r =
  let n = Bitenc.read_varint r in
  read_n n (fun () ->
      let lane = Bitenc.read_varint r in
      let v = Bitenc.read_varint r in
      (lane, v))

let decode_info decode_state r =
  let node_id = Bitenc.read_varint r in
  let nlanes = Bitenc.read_varint r in
  let lanes = read_n nlanes (fun () -> Bitenc.read_varint r) in
  let t_in = decode_lane_map r in
  let t_out = decode_lane_map r in
  let state = decode_state r in
  { node_id; lanes; t_in; t_out; state }

let decode_ptr r =
  let target = Bitenc.read_varint r in
  if Bitenc.read_bit r then begin
    let d = Bitenc.read_varint r in
    let c = Bitenc.read_varint r in
    { Lcp_pls.Spanning_tree.target; parent = Some (d, c) }
  end
  else { Lcp_pls.Spanning_tree.target; parent = None }

let kind_of_code = function
  | 0 -> KV
  | 1 -> KE
  | 2 -> KP
  | 3 -> KB
  | 4 -> KT
  | c -> invalid_arg (Printf.sprintf "Certificate.decode: kind code %d" c)

let decode_frame decode_state r =
  if not (Bitenc.read_bit r) then begin
    let minfo = decode_info decode_state r in
    let mkind = kind_of_code (Bitenc.read_bits r ~width:3) in
    let merged = decode_info decode_state r in
    let is_tree_root = Bitenc.read_bit r in
    let nreal = Bitenc.read_varint r in
    let member_real = read_n nreal (fun () -> Bitenc.read_bit r) in
    let nchildren = Bitenc.read_varint r in
    let children =
      read_n nchildren (fun () ->
          let nid = Bitenc.read_varint r in
          let cinfo = decode_info decode_state r in
          (nid, cinfo))
    in
    T_frame { member = (minfo, mkind); merged; is_tree_root; member_real; children }
  end
  else begin
    let bnode = decode_info decode_state r in
    let i = Bitenc.read_varint r in
    let j = Bitenc.read_varint r in
    let linfo = decode_info decode_state r in
    let lkind = kind_of_code (Bitenc.read_bits r ~width:3) in
    let rinfo = decode_info decode_state r in
    let rkind = kind_of_code (Bitenc.read_bits r ~width:3) in
    let bridge_real = Bitenc.read_bit r in
    let opt_int () =
      if Bitenc.read_bit r then Some (Bitenc.read_varint r) else None
    in
    let left_root_member = opt_int () in
    let right_root_member = opt_int () in
    let position =
      match Bitenc.read_bits r ~width:2 with
      | 0 -> `Bridge
      | 1 -> `Left
      | 2 -> `Right
      | c -> invalid_arg (Printf.sprintf "Certificate.decode: position %d" c)
    in
    let opt_ptr () = if Bitenc.read_bit r then Some (decode_ptr r) else None in
    let left_ptr = opt_ptr () in
    let right_ptr = opt_ptr () in
    B_frame
      {
        bnode; i; j;
        left = (linfo, lkind);
        right = (rinfo, rkind);
        bridge_real; left_root_member; right_root_member;
        position; left_ptr; right_ptr;
      }
  end

let decode ~decode_state r =
  let nframes = Bitenc.read_varint r in
  let frames = read_n nframes (fun () -> decode_frame decode_state r) in
  let global_ptr = decode_ptr r in
  let accept_state = Bitenc.read_bit r in
  let ntrans = Bitenc.read_varint r in
  let transported =
    read_n ntrans (fun () ->
        let vu = Bitenc.read_varint r in
        let vv = Bitenc.read_varint r in
        let rank_fwd = Bitenc.read_varint r in
        let rank_bwd = Bitenc.read_varint r in
        let nvf = Bitenc.read_varint r in
        let vframes = read_n nvf (fun () -> decode_frame decode_state r) in
        { vu; vv; rank_fwd; rank_bwd; vframes })
  in
  { frames; global_ptr; accept_state; transported }

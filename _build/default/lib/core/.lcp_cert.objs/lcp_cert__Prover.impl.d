lib/core/prover.ml: Array Certificate Compose Hashtbl Lcp_algebra Lcp_graph Lcp_interval Lcp_lanes Lcp_lanewidth Lcp_pls List Option Queue

lib/core/theorem1.mli: Certificate Lcp_algebra Lcp_interval Lcp_pls Prover Verifier

lib/core/compose.ml: Certificate Lcp_algebra Lcp_lanewidth List

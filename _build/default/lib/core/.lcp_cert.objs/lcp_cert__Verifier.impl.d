lib/core/verifier.ml: Certificate Compose Hashtbl Lcp_algebra Lcp_pls List Option Printf

lib/core/prover.mli: Certificate Lcp_algebra Lcp_graph Lcp_interval Lcp_lanewidth Lcp_pls

lib/core/faultsim.mli: Lcp_pls

lib/core/certificate.mli: Format Lcp_pls Lcp_util

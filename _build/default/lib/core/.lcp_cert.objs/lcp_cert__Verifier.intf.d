lib/core/verifier.mli: Certificate Lcp_algebra Lcp_pls

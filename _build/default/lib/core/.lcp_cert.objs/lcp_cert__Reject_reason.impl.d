lib/core/reject_reason.ml: Lcp_pls List String

lib/core/theorem1.ml: Certificate Lcp_algebra Lcp_lanes Lcp_pls Printf Prover Verifier

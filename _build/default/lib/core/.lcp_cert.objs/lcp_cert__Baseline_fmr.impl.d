lib/core/baseline_fmr.ml: Array Lcp_algebra Lcp_graph Lcp_interval Lcp_pls Lcp_util List Option Printf

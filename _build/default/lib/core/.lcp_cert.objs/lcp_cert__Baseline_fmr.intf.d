lib/core/baseline_fmr.mli: Lcp_algebra Lcp_interval Lcp_pls

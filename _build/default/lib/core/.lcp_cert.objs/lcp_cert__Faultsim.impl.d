lib/core/faultsim.ml: Array Baseline_fmr Certificate Hashtbl Lcp_algebra Lcp_graph Lcp_interval Lcp_pls List Option Printf Random Reject_reason Theorem1

lib/core/reject_reason.mli:

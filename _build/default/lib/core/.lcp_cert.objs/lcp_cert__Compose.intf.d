lib/core/compose.mli: Certificate Lcp_algebra Lcp_lanewidth

lib/core/certificate.ml: Format Lcp_pls Lcp_util List Printf

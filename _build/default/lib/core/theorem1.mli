(** Theorem 1, assembled: for any property algebra (any MSO₂ property, per
    Prop 2.4) and any pathwidth bound k, an O(log n)-bit proof labeling
    scheme.

    The edge scheme is faithful to the paper's model: the verifier sees
    only its identifier and the multiset of incident edge labels. The
    vertex scheme is derived via Prop 2.1 (bounded-pathwidth graphs have
    bounded degeneracy). *)

module Make (A : Lcp_algebra.Algebra_sig.S) : sig
  module P : module type of Prover.Make (A)
  module V : module type of Verifier.Make (A)

  val edge_scheme :
    ?strategy:Prover.strategy ->
    ?rep:(Lcp_pls.Config.t -> Lcp_interval.Representation.t option) ->
    k:int ->
    unit ->
    A.state Certificate.label Lcp_pls.Scheme.edge_scheme
  (** [~k] is the promised pathwidth bound; the verifier enforces
      lane indices < f(k+1) and stack depth ≤ 2·f(k+1). [rep] optionally
      supplies a width-(k+1) interval representation per configuration
      (e.g. a generator witness); otherwise the exact algorithm runs. *)

  val vertex_scheme :
    ?strategy:Prover.strategy ->
    ?rep:(Lcp_pls.Config.t -> Lcp_interval.Representation.t option) ->
    k:int ->
    unit ->
    (int * int * A.state Certificate.label) list Lcp_pls.Scheme.vertex_scheme

  val max_lanes_for : k:int -> int
  (** f(k+1): the lane bound the verifier enforces. *)
end

(** The Theorem 1 certificate structure (§6.2).

    Every edge of the completion G' carries a stack of frames describing
    the branch of the hierarchical decomposition that contains it — at most
    2k levels by Obs 5.5, each of size O_k(log n) bits. Real edges carry
    their stack directly; each virtual edge's stack rides along its
    embedding path as a transported record (§6.2, "certifying the
    embedding"), at most h(k+1) records per real edge by Prop 4.6.

    The basic information B(Q) of a hierarchy node (Def 6.3) is the [info]
    record: lane set, terminals by vertex identifier, and the homomorphism
    class — an algebra state whose boundary slots are named by the vertex
    identifiers of the terminals, so that prover and verifier compute in
    the same slot language. [node_id] is a prover-chosen serial number that
    lets a vertex group the labels of its incident edges by hierarchy node;
    it carries no trusted content (all consistency is re-checked). *)

type 'state info = {
  node_id : int;
  lanes : int list;
  t_in : (int * int) list;  (** lane ↦ in-terminal vertex id *)
  t_out : (int * int) list;  (** lane ↦ out-terminal vertex id *)
  state : 'state;
}

type kind = KV | KE | KP | KB | KT

type 'state frame =
  | T_frame of {
      member : 'state info * kind;
          (** B(G') and node type of the tree member containing the edge *)
      merged : 'state info;  (** B(Tree-merge(T_{G'})) *)
      is_tree_root : bool;
      member_real : bool list;
          (** for E/P members: realness of each member edge (E: the single
              edge; P: path edges in lane order) — needed to recompute the
              member's class on the real-edge subgraph *)
      children : (int * 'state info) list;
          (** (root-member node id, B(Tree-merge(T_child))) per child *)
    }
  | B_frame of {
      bnode : 'state info;
      i : int;
      j : int;
      left : 'state info * kind;  (** kind ∈ {KV, KT} *)
      right : 'state info * kind;
      bridge_real : bool;  (** whether the bridge edge is a real G edge *)
      left_root_member : int option;
          (** node id of the left tree's root member, when left is a T-node *)
      right_root_member : int option;
      position : [ `Bridge | `Left | `Right ];
          (** where this edge sits inside the B-node *)
      left_ptr : Lcp_pls.Spanning_tree.label option;
          (** per-edge pointer sub-label certifying a V-node part *)
      right_ptr : Lcp_pls.Spanning_tree.label option;
    }

type 'state vrecord = {
  vu : int;  (** id of the first endpoint of the virtual edge *)
  vv : int;
  rank_fwd : int;  (** 1-based rank of this real edge along the path *)
  rank_bwd : int;
  vframes : 'state frame list;  (** the virtual edge's own stack *)
}

type 'state label = {
  frames : 'state frame list;  (** root-first stack of this real edge *)
  global_ptr : Lcp_pls.Spanning_tree.label;
      (** Prop 2.2 pointer to a vertex of the root member, over G *)
  accept_state : bool;
      (** the prover's claim that the root class is accepting; checked by
          every vertex against the root merged state it can see *)
  transported : 'state vrecord list;
}

val kind_code : kind -> int

val encode :
  encode_state:(Lcp_util.Bitenc.writer -> 'state -> unit) ->
  Lcp_util.Bitenc.writer ->
  'state label ->
  unit
(** Bit-exact serialization (for proof-size measurement). *)

val decode :
  decode_state:(Lcp_util.Bitenc.reader -> 'state) ->
  Lcp_util.Bitenc.reader ->
  'state label
(** Inverse of {!encode}, given the state decoder of the property algebra
    in use — certificates really are just the emitted bits (tested by
    round-tripping full labelings). *)

val pp_kind : Format.formatter -> kind -> unit

(** The centralized certificate assignment P of Theorem 1.

    Pipeline: width-(k+1) interval representation → lane partition
    (Prop 4.6, or the greedy Obs 4.3 partition as an ablation) → completion
    G' plus a low-congestion embedding of the virtual edges → lanewidth
    construction trace (Prop 5.2) → T-node hierarchical decomposition
    (Prop 5.6) → homomorphism classes of every node (Prop 6.1, computed on
    the real-edge subgraph) → per-edge certificates: the frame stack of
    each G'-edge, transported embedding records for virtual edges, pointer
    sub-labels for V-node parts and for the global root (Prop 2.2). *)

type strategy =
  [ `Prop46  (** guaranteed O(1) congestion, f(k+1) lanes *)
  | `Greedy  (** ≤ k+1 lanes, no congestion guarantee — ablation *) ]

module Make (A : Lcp_algebra.Algebra_sig.S) : sig
  type labeling = A.state Certificate.label Lcp_pls.Scheme.Edge_map.t

  type artifacts = {
    labels : labeling;
    completion : Lcp_graph.Graph.t;
    hierarchy : Lcp_lanewidth.Hierarchy.t;
    lane_count : int;
    congestion : int;  (** measured embedding congestion *)
    holds : bool;  (** whether the property holds on the real graph *)
  }

  val prepare :
    ?strategy:strategy ->
    ?rep:Lcp_interval.Representation.t ->
    Lcp_pls.Config.t ->
    (artifacts, string) result
  (** Build everything, including certificates, regardless of whether the
      property holds (used by soundness tests: an honest structure with a
      failing property must still be rejected via [accept_state]). When
      [rep] is omitted, the exact small-graph algorithm computes one.
      The representation must belong to the configuration's graph. *)

  val prove :
    ?strategy:strategy ->
    ?rep:Lcp_interval.Representation.t ->
    Lcp_pls.Config.t ->
    (labeling, string) result
  (** [P]: like {!prepare}, but declines when the property does not hold
      (completeness side of the definition in §1.1). *)
end

module Graph = Lcp_graph.Graph
module Traversal = Lcp_graph.Traversal
module Representation = Lcp_interval.Representation
module Lane_partition = Lcp_lanes.Lane_partition
module Completion = Lcp_lanes.Completion
module Embedding = Lcp_lanes.Embedding
module Low_congestion = Lcp_lanes.Low_congestion
module Klane = Lcp_lanewidth.Klane
module Hierarchy = Lcp_lanewidth.Hierarchy
module Prop52 = Lcp_lanewidth.Prop52
module Builder = Lcp_lanewidth.Builder
module Config = Lcp_pls.Config
module Scheme = Lcp_pls.Scheme
module Spanning_tree = Lcp_pls.Spanning_tree
open Certificate

type strategy = [ `Prop46 | `Greedy ]

module Make (A : Lcp_algebra.Algebra_sig.S) = struct
  module C = Compose.Make (A)

  type labeling = A.state Certificate.label Scheme.Edge_map.t

  type artifacts = {
    labels : labeling;
    completion : Graph.t;
    hierarchy : Hierarchy.t;
    lane_count : int;
    congestion : int;
    holds : bool;
  }

  let info_of ~fresh iface state =
    {
      node_id = fresh ();
      lanes = iface.C.lanes;
      t_in = iface.C.t_in;
      t_out = iface.C.t_out;
      state;
    }

  (* BFS pointer sub-labels inside a k-lane subgraph, targeting [root] *)
  let subgraph_pointer ~vid (k : Klane.t) root =
    let adj = Hashtbl.create 16 in
    List.iter
      (fun (u, v) ->
        Hashtbl.replace adj u
          (v :: Option.value ~default:[] (Hashtbl.find_opt adj u));
        Hashtbl.replace adj v
          (u :: Option.value ~default:[] (Hashtbl.find_opt adj v)))
      k.Klane.edges;
    let dist = Hashtbl.create 16 and parent = Hashtbl.create 16 in
    Hashtbl.replace dist root 0;
    let q = Queue.create () in
    Queue.push root q;
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun w ->
          if not (Hashtbl.mem dist w) then begin
            Hashtbl.replace dist w (Hashtbl.find dist u + 1);
            Hashtbl.replace parent w u;
            Queue.push w q
          end)
        (Option.value ~default:[] (Hashtbl.find_opt adj u))
    done;
    let target = vid root in
    List.map
      (fun (u, v) ->
        let lab =
          if Hashtbl.find_opt parent u = Some v then
            { Spanning_tree.target; parent = Some (Hashtbl.find dist u, vid u) }
          else if Hashtbl.find_opt parent v = Some u then
            { Spanning_tree.target; parent = Some (Hashtbl.find dist v, vid v) }
          else { Spanning_tree.target; parent = None }
        in
        ((u, v), lab))
      k.Klane.edges

  type node_result = {
    nr_info : A.state info;
    nr_kind : kind;
    nr_klane : Klane.t;
    nr_root_member : int option;
    nr_real_mask : bool list; (* for E/P nodes *)
  }

  (* the realness mask of a P-node, in lane order *)
  let p_mask ~is_real (k : Klane.t) =
    let path = List.map (fun l -> Klane.tau_in k l) (Klane.lanes k) in
    let rec go = function
      | a :: (b :: _ as rest) -> is_real a b :: go rest
      | [] | [ _ ] -> []
    in
    go path

  let annotate ~vid ~is_real ~fresh ~push hierarchy =
    let rec process (h : Hierarchy.t) : node_result =
      match h with
      | Hierarchy.V_node k ->
          let iface = C.iface_of_klane ~vid k in
          {
            nr_info = info_of ~fresh iface (C.v_state iface);
            nr_kind = KV;
            nr_klane = k;
            nr_root_member = None;
            nr_real_mask = [];
          }
      | Hierarchy.E_node k ->
          let iface = C.iface_of_klane ~vid k in
          let real =
            match k.Klane.edges with
            | [ (u, v) ] -> is_real u v
            | _ -> invalid_arg "Prover: malformed E-node"
          in
          {
            nr_info = info_of ~fresh iface (C.e_state iface ~real);
            nr_kind = KE;
            nr_klane = k;
            nr_root_member = None;
            nr_real_mask = [ real ];
          }
      | Hierarchy.P_node k ->
          let iface = C.iface_of_klane ~vid k in
          let mask = p_mask ~is_real k in
          {
            nr_info = info_of ~fresh iface (C.p_state iface ~mask);
            nr_kind = KP;
            nr_klane = k;
            nr_root_member = None;
            nr_real_mask = mask;
          }
      | Hierarchy.B_node { result; left; right; i; j } ->
          let lr = process left and rr = process right in
          let bridge_edge =
            Graph.canonical_edge
              (Klane.tau_out lr.nr_klane i)
              (Klane.tau_out rr.nr_klane j)
          in
          let bridge_real = is_real (fst bridge_edge) (snd bridge_edge) in
          let state, iface =
            C.bridge
              (lr.nr_info.state, C.iface_of_klane ~vid lr.nr_klane)
              (rr.nr_info.state, C.iface_of_klane ~vid rr.nr_klane)
              ~i ~j ~real:bridge_real
          in
          let binfo = info_of ~fresh iface state in
          let left_ptrs =
            match left with
            | Hierarchy.V_node vk ->
                Some (subgraph_pointer ~vid result (List.hd vk.Klane.vertices))
            | _ -> None
          in
          let right_ptrs =
            match right with
            | Hierarchy.V_node vk ->
                Some (subgraph_pointer ~vid result (List.hd vk.Klane.vertices))
            | _ -> None
          in
          let ptr_for ptrs e =
            Option.map
              (fun l -> List.assoc (Graph.canonical_edge (fst e) (snd e)) l)
              ptrs
          in
          let position e =
            if e = bridge_edge then `Bridge
            else if List.mem e lr.nr_klane.Klane.edges then `Left
            else `Right
          in
          List.iter
            (fun e ->
              push e
                (B_frame
                   {
                     bnode = binfo;
                     i;
                     j;
                     left = (lr.nr_info, lr.nr_kind);
                     right = (rr.nr_info, rr.nr_kind);
                     bridge_real;
                     left_root_member = lr.nr_root_member;
                     right_root_member = rr.nr_root_member;
                     position = position e;
                     left_ptr = ptr_for left_ptrs e;
                     right_ptr = ptr_for right_ptrs e;
                   }))
            result.Klane.edges;
          {
            nr_info = binfo;
            nr_kind = KB;
            nr_klane = result;
            nr_root_member = None;
            nr_real_mask = [];
          }
      | Hierarchy.T_node { t_result = _; tree } ->
          let merged_info, root_member, merged_klane =
            process_ttree ~is_root:true tree
          in
          {
            nr_info = merged_info;
            nr_kind = KT;
            nr_klane = merged_klane;
            nr_root_member = Some root_member;
            nr_real_mask = [];
          }
    and process_ttree ~is_root (t : Hierarchy.ttree) =
      let piece = process t.Hierarchy.piece in
      let children =
        List.map (fun c -> process_ttree ~is_root:false c) t.Hierarchy.children
      in
      let merged_state, merged_iface =
        List.fold_left
          (fun (sp, fp) (cinfo, _, _) ->
            C.parent
              ~child:(cinfo.state, C.iface_of_info cinfo)
              ~parent:(sp, fp))
          (piece.nr_info.state, C.iface_of_info piece.nr_info)
          children
      in
      (* the interface folded from the infos must agree with the one read
         off the merged k-lane graph; using the folded one guarantees the
         verifier's recomputation matches bit for bit *)
      assert (merged_iface = C.iface_of_klane ~vid t.Hierarchy.merged);
      let merged_info = info_of ~fresh merged_iface merged_state in
      let frame =
        T_frame
          {
            member = (piece.nr_info, piece.nr_kind);
            merged = merged_info;
            is_tree_root = is_root;
            member_real = piece.nr_real_mask;
            children =
              List.map (fun (cinfo, root_id, _) -> (root_id, cinfo)) children;
          }
      in
      List.iter (fun e -> push e frame) piece.nr_klane.Klane.edges;
      (merged_info, piece.nr_info.node_id, t.Hierarchy.merged)
    in
    process hierarchy

  (* ------------------------------------------------------------------ *)

  let prepare ?(strategy = `Prop46) ?rep cfg =
    let g = Config.graph cfg in
    if Graph.n g = 0 then Error "empty graph"
    else if not (Traversal.is_connected g) then Error "disconnected graph"
    else begin
      let rep =
        match rep with
        | Some r ->
            if
              Representation.graph r == g
              || Graph.equal (Representation.graph r) g
            then r
            else
              invalid_arg "Prover.prepare: representation of a different graph"
        | None -> Lcp_interval.Pathwidth.exact_interval_representation g
      in
      let partition, embedding =
        match strategy with
        | `Prop46 ->
            let r = Low_congestion.construct rep in
            (r.Low_congestion.partition, r.Low_congestion.full_embedding)
        | `Greedy ->
            let p = Lane_partition.of_greedy_coloring rep in
            let paths =
              List.filter_map
                (fun (a, b) ->
                  match Traversal.shortest_path g a b with
                  | Some path -> Some (Graph.canonical_edge a b, path)
                  | None -> None)
                (Completion.new_edges_full p)
            in
            (p, paths)
      in
      let host = Completion.completion partition in
      let trace, to_host = Prop52.trace_of_partition partition in
      let hierarchy = Builder.of_trace_on ~host ~to_host trace in
      let vid v = Config.id cfg v in
      let is_real u v = Graph.mem_edge g u v in
      let fresh =
        let c = ref 0 in
        fun () ->
          incr c;
          !c
      in
      let stacks : (Graph.edge, A.state frame list) Hashtbl.t =
        Hashtbl.create (Graph.m host)
      in
      let push e frame =
        let e = Graph.canonical_edge (fst e) (snd e) in
        Hashtbl.replace stacks e
          (frame :: Option.value ~default:[] (Hashtbl.find_opt stacks e))
      in
      let root = annotate ~vid ~is_real ~fresh ~push hierarchy in
      let root_accepts = C.accepts root.nr_info.state in
      let root_member_vertex =
        match hierarchy with
        | Hierarchy.T_node { tree; _ } ->
            List.hd (Hierarchy.klane_of tree.Hierarchy.piece).Klane.vertices
        | _ -> 0
      in
      let ptr_labels =
        Spanning_tree.labels_for cfg ~root:root_member_vertex
          ~target:(vid root_member_vertex)
      in
      let transported : (Graph.edge, A.state vrecord list) Hashtbl.t =
        Hashtbl.create 64
      in
      List.iter
        (fun ((a, b), path) ->
          let vframes =
            Option.value ~default:[]
              (Hashtbl.find_opt stacks (Graph.canonical_edge a b))
          in
          let len = List.length path - 1 in
          let arr = Array.of_list path in
          let arr =
            if arr.(0) = a then arr else Array.of_list (List.rev path)
          in
          for idx = 0 to len - 1 do
            let e = Graph.canonical_edge arr.(idx) arr.(idx + 1) in
            let record =
              {
                vu = vid a;
                vv = vid b;
                rank_fwd = idx + 1;
                rank_bwd = len - idx;
                vframes;
              }
            in
            Hashtbl.replace transported e
              (record
              :: Option.value ~default:[] (Hashtbl.find_opt transported e))
          done)
        embedding;
      let labels =
        Graph.fold_edges
          (fun e m ->
            let frames =
              Option.value ~default:[] (Hashtbl.find_opt stacks e)
            in
            let global_ptr =
              match Scheme.Edge_map.find ptr_labels e with
              | Some l -> l
              | None -> assert false
            in
            Scheme.Edge_map.add m e
              {
                frames;
                global_ptr;
                accept_state = root_accepts;
                transported =
                  Option.value ~default:[] (Hashtbl.find_opt transported e);
              })
          g Scheme.Edge_map.empty
      in
      Ok
        {
          labels;
          completion = host;
          hierarchy;
          lane_count = Lane_partition.lane_count partition;
          congestion = Embedding.congestion g embedding;
          holds = root_accepts;
        }
    end

  let prove ?strategy ?rep cfg =
    match prepare ?strategy ?rep cfg with
    | Error _ as e -> e
    | Ok art ->
        if art.holds then Ok art.labels else Error "property does not hold"
end

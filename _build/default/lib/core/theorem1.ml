module Scheme = Lcp_pls.Scheme

module Make (A : Lcp_algebra.Algebra_sig.S) = struct
  module P = Prover.Make (A)
  module V = Verifier.Make (A)

  let max_lanes_for ~k = Lcp_lanes.Bounds.f (k + 1)

  let edge_scheme ?strategy ?rep ~k () =
    let max_lanes = max_lanes_for ~k in
    let prove cfg =
      let rep = match rep with None -> None | Some f -> f cfg in
      match P.prove ?strategy ?rep cfg with
      | Ok labels -> Some labels
      | Error _ -> None
    in
    {
      Scheme.es_name = Printf.sprintf "theorem1(%s, pw<=%d)" A.name k;
      es_prove = prove;
      es_verify = V.verify ~max_lanes;
      es_encode = (fun w l -> Certificate.encode ~encode_state:A.encode w l);
    }

  let vertex_scheme ?strategy ?rep ~k () =
    (* bounded pathwidth implies bounded degeneracy: a width-(k+1) interval
       representation yields a (k+1)-degenerate orientation *)
    Scheme.edge_to_vertex ~d:(k + 1) (edge_scheme ?strategy ?rep ~k ())
end

(** The adversarial soundness campaign: generators x schemes x fault
    models over seeded trials (EXPERIMENTS.md §E5).

    Each trial proves a scheme honestly on a random configuration,
    injects one fault from {!Lcp_pls.Fault.catalogue}, classifies the
    outcome, and — for detected faults — drives localized recovery
    ({!Lcp_pls.Network.patch_region}), falling back to a global reproof.
    Faults are transient: a fault that masked every alarm while live
    (silent victims, forged ids) gets one more, honest verification round
    and must be caught there (detection latency 2). The escape counter
    therefore stays at zero unless a scheme's soundness — or the
    agreement between the round simulation and the direct harness —
    regresses; campaign front-ends exit non-zero on any escape.

    The roster: Theorem 1 (connectivity and acyclicity instances), the
    FMR O(log² n) baseline (no label codec, so bit-level faults are
    skipped), the Prop 2.2 spanning-tree pointer scheme, the 1-bit
    bipartiteness scheme, and the universal scheme. *)

val scheme_names : string list
val fault_names : string list

val fault_of_name : string -> Lcp_pls.Fault.spec option
(** Inverse of {!Lcp_pls.Fault.spec_name} over the catalogue. *)

type cell = {
  c_scheme : string;
  c_fault : string;
  c_trials : int;  (** trials attempted *)
  c_injected : int;  (** faults actually injected (trials minus skips) *)
  c_no_op : int;
  c_legal : int;  (** legal rewrites, silently adopted *)
  c_detected : int;
  c_masked : int;  (** detected only after the fault ceased (latency 2) *)
  c_latency_sum : int;  (** over detected faults *)
  c_localized : int;  (** repaired by patching the rejecting region *)
  c_global : int;  (** repairs that needed a global reproof *)
  c_recovery_rounds : int;
  c_escapes : int;  (** must be 0 *)
}

type report = {
  cells : cell list;
  reasons : (string * int) list;
      (** rejection-reason histogram, keyed by {!Reject_reason.classify} *)
  schemes : int;
  fault_models : int;
  total_injected : int;
  total_effective : int;  (** injected minus no-ops and legal rewrites *)
  total_detected : int;
  total_escapes : int;
  escape_notes : (string * string * string) list;
      (** (scheme, fault, note) per escape *)
}

val run :
  ?seed:int ->
  ?trials:int ->
  ?schemes:string list ->
  ?faults:Lcp_pls.Fault.spec list ->
  unit ->
  report
(** Run the campaign: [trials] (default 30) per (scheme, fault) cell,
    deterministically derived from [seed] (default 20250806) — each cell
    is seeded independently, so filtering schemes or faults does not
    change the remaining cells. *)

val print_matrix : report -> unit
(** Print the soundness matrix, the campaign totals, the rejection-reason
    taxonomy histogram, and any escape notes. *)

(** The "dominating set of size <= budget" algebra: each boundary vertex
    is in the set, dominated, or not yet dominated; profiles map to the
    minimum number of forgotten set members (capped). A vertex may only be
    forgotten once it is in the set or dominated. MSO₂ counterpart:
    [Lcp_mso.Properties.dominating_set_at_most]. *)

type status = In_set | Dominated | Undominated

module type PARAM = sig
  val budget : int
end

module Make (P : PARAM) : Algebra_sig.ORACLE

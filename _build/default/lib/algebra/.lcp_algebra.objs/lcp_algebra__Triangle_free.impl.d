lib/algebra/triangle_free.ml: Format Lcp_graph Lcp_util List String

lib/algebra/combinators.mli: Algebra_sig

lib/algebra/combinators.ml: Acyclicity Algebra_sig Connectivity Degree Format Lcp_graph

lib/algebra/bipartite.ml: Array Format Lcp_graph Lcp_util List Printf Queue String

lib/algebra/colorable.mli: Algebra_sig

lib/algebra/slot_partition.mli: Format Lcp_util

lib/algebra/bipartite.mli: Algebra_sig Lcp_util

lib/algebra/connectivity.ml: Format Lcp_graph Lcp_util Slot_partition

lib/algebra/lift.ml: Algebra_sig Array Lcp_graph Lcp_lanewidth List

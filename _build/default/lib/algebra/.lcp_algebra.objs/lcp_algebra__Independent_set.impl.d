lib/algebra/independent_set.ml: Format Hashtbl Lcp_graph Lcp_util List Printf String

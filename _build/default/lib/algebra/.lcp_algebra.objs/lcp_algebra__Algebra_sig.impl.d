lib/algebra/algebra_sig.ml: Format Lcp_graph Lcp_util

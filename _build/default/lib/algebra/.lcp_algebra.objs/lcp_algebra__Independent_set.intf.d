lib/algebra/independent_set.mli: Algebra_sig

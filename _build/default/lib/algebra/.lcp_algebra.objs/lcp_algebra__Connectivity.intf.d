lib/algebra/connectivity.mli: Algebra_sig Lcp_util

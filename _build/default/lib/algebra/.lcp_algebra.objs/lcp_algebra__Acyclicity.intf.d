lib/algebra/acyclicity.mli: Algebra_sig Lcp_util

lib/algebra/matching.ml: Array Format Lcp_graph Lcp_util List String

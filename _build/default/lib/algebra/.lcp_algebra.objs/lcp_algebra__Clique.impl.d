lib/algebra/clique.ml: Format Hashtbl Lcp_graph Lcp_util List Option Printf String

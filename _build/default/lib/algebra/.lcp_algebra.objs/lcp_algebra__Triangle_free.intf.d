lib/algebra/triangle_free.mli: Algebra_sig

lib/algebra/terminal_graph.ml: Algebra_sig Array Lcp_graph List Printf

lib/algebra/hamiltonian.mli: Algebra_sig

lib/algebra/vertex_cover.ml: Format Hashtbl Lcp_graph Lcp_util List Printf String

lib/algebra/vertex_cover.mli: Algebra_sig

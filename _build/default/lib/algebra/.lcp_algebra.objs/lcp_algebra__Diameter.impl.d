lib/algebra/diameter.ml: Format Lcp_graph Lcp_util List Printf String

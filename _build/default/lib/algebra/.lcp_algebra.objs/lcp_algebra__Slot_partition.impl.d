lib/algebra/slot_partition.ml: Format Lcp_util List String

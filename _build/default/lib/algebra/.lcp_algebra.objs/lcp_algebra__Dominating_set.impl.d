lib/algebra/dominating_set.ml: Format Hashtbl Lcp_graph Lcp_util List Option Printf String

lib/algebra/dominating_set.mli: Algebra_sig

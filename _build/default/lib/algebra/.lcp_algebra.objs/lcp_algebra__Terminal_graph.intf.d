lib/algebra/terminal_graph.mli: Algebra_sig Lcp_graph

lib/algebra/colorable.ml: Array Format Lcp_graph Lcp_util List Printf String

lib/algebra/clique.mli: Algebra_sig

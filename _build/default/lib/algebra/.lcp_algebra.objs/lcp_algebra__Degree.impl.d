lib/algebra/degree.ml: Format Lcp_graph Lcp_util List Printf String

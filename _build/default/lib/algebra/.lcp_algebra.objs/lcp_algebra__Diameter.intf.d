lib/algebra/diameter.mli: Algebra_sig

lib/algebra/matching.mli: Algebra_sig

lib/algebra/lift.mli: Algebra_sig Lcp_graph Lcp_lanewidth

lib/algebra/degree.mli: Algebra_sig

lib/algebra/acyclicity.ml: Format Lcp_graph Lcp_util Slot_partition

lib/algebra/acyclicity.ml: Format Lcp_graph Lcp_util List Map Slot_partition

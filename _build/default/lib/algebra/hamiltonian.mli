(** Hamiltonicity algebras. A profile describes a partial edge subset that
    could still complete into a Hamiltonian cycle (or path): open segments
    with their boundary endpoints, interior (degree-2) boundary vertices,
    and — for the path variant — up to two forgotten dangling ends. The
    state is the set of achievable profiles. MSO₂ counterparts:
    [Lcp_mso.Properties.hamiltonian_cycle], [.hamiltonian_path]. *)

module Cycle_alg : Algebra_sig.ORACLE
module Path_alg : Algebra_sig.ORACLE

(** The "independent set of size >= target" algebra: profiles fix the
    membership of boundary vertices and map to the maximum number of
    forgotten members, capped at the target. MSO₂ counterpart:
    [Lcp_mso.Properties.independent_set_at_least]. *)

module type PARAM = sig
  val target : int
end

module Make (P : PARAM) : Algebra_sig.ORACLE

module Klane = Lcp_lanewidth.Klane
module Hierarchy = Lcp_lanewidth.Hierarchy
module Merge = Lcp_lanewidth.Merge
module Graph = Lcp_graph.Graph

module Make (A : Algebra_sig.S) = struct
  let terminals (k : Klane.t) =
    List.sort_uniq compare
      (List.map snd k.Klane.lane_in @ List.map snd k.Klane.lane_out)

  let forget_to st keep =
    List.fold_left
      (fun st s -> if List.mem s keep then st else A.forget st s)
      st (A.slots st)

  let of_small (k : Klane.t) =
    let st = List.fold_left A.introduce A.empty k.Klane.vertices in
    let st = List.fold_left (fun st (u, v) -> A.add_edge st u v) st k.Klane.edges in
    forget_to st (terminals k)

  let bridge (s1, k1) (s2, k2) ~i ~j =
    let st = A.union s1 s2 in
    A.add_edge st (Klane.tau_out k1 i) (Klane.tau_out k2 j)

  let parent ~child:(sc, kc) ~parent:(sp, kp) ~result =
    let glued = List.map (fun i -> Klane.tau_in kc i) (Klane.lanes kc) in
    let sc, temp_pairs =
      List.fold_left
        (fun (st, acc) v ->
          let tmp = -(v + 1) in
          (A.rename st ~old_slot:v ~new_slot:tmp, (v, tmp) :: acc))
        (sc, []) glued
    in
    let st = A.union sc sp in
    let st =
      List.fold_left
        (fun st (v, tmp) -> A.identify st ~keep:v ~drop:tmp)
        st temp_pairs
    in
    ignore kp;
    forget_to st (terminals result)

  let rec eval (h : Hierarchy.t) =
    match h with
    | Hierarchy.V_node k | Hierarchy.E_node k | Hierarchy.P_node k ->
        of_small k
    | Hierarchy.B_node { left; right; i; j; _ } ->
        bridge
          (eval left, Hierarchy.klane_of left)
          (eval right, Hierarchy.klane_of right)
          ~i ~j
    | Hierarchy.T_node { tree; _ } -> eval_ttree tree

  and eval_ttree { Hierarchy.piece; children; merged = _ } =
    let st0 = eval piece in
    let st, _ =
      List.fold_left
        (fun (sp, kp) (c : Hierarchy.ttree) ->
          let sc = eval_ttree c in
          let kr = Merge.parent_merge ~child:c.Hierarchy.merged ~parent:kp in
          ( parent ~child:(sc, c.Hierarchy.merged) ~parent:(sp, kp) ~result:kr,
            kr ))
        (st0, Hierarchy.klane_of piece)
        children
    in
    st

  let holds h =
    let st = eval h in
    A.accepts (forget_to st [])

  let decide_graph g =
    (* sweep in vertex order, forgetting each vertex as soon as all its
       neighbors are present — the boundary stays small whenever the vertex
       numbering is a good layout (true for all our generators) *)
    let n = Graph.n g in
    let st = ref A.empty in
    let forgotten = Array.make n false in
    for v = 0 to n - 1 do
      st := A.introduce !st v;
      List.iter
        (fun w -> if w < v && not forgotten.(w) then st := A.add_edge !st v w)
        (Graph.neighbors g v);
      for u = 0 to v do
        if
          (not forgotten.(u))
          && List.for_all (fun w -> w <= v) (Graph.neighbors g u)
        then begin
          forgotten.(u) <- true;
          st := A.forget !st u
        end
      done
    done;
    A.accepts !st
end

(** The acyclicity (forest) algebra: partition of the boundary by tree
    component plus a sticky "cycle seen" flag. An edge or identification
    inside one component closes a cycle. *)

module Bitenc = Lcp_util.Bitenc

type state = {
  partition : Slot_partition.t;
  cyclic : bool;
}

let name = "acyclic"
let description = "the graph has no cycle (is a forest)"

let empty = { partition = Slot_partition.empty; cyclic = false }

let introduce st s =
  { st with partition = Slot_partition.add_singleton st.partition s }

let add_edge st a b =
  if Slot_partition.same_class st.partition a b then { st with cyclic = true }
  else { st with partition = Slot_partition.merge st.partition a b }

let forget st s =
  let partition, _ = Slot_partition.remove st.partition s in
  { st with partition }

let union a b =
  {
    partition = Slot_partition.union a.partition b.partition;
    cyclic = a.cyclic || b.cyclic;
  }

let identify st ~keep ~drop =
  if Slot_partition.same_class st.partition keep drop then
    let partition, _ = Slot_partition.remove st.partition drop in
    { partition; cyclic = true }
  else begin
    let partition = Slot_partition.merge st.partition keep drop in
    let partition, _ = Slot_partition.remove partition drop in
    { st with partition }
  end

let rename st ~old_slot ~new_slot =
  { st with partition = Slot_partition.rename st.partition ~old_slot ~new_slot }

let slots st = Slot_partition.slots st.partition

let accepts st =
  assert (slots st = []);
  not st.cyclic

let equal a b = Slot_partition.equal a.partition b.partition && a.cyclic = b.cyclic

let encode w st =
  Slot_partition.encode w st.partition;
  Bitenc.bit w st.cyclic

let decode r =
  let partition = Slot_partition.decode r in
  let cyclic = Bitenc.read_bit r in
  { partition; cyclic }

let pp ppf st =
  Format.fprintf ppf "acyclic(%a; cyclic=%b)" Slot_partition.pp st.partition
    st.cyclic

let oracle = Lcp_graph.Traversal.is_acyclic

(** Degree-constraint algebras, parameterized by the bound d: per-boundary-
    vertex degree counters capped at d+1 plus a sticky violation flag.
    "max degree <= d" and "d-regular" are MSO₂ for fixed d
    ([Lcp_mso.Properties.max_degree_at_most], [.regular]); combined with
    {!Connectivity} and {!Acyclicity} they recognize the paper's canonical
    path/cycle pair (see {!Combinators}). *)

module type PARAM = sig
  val d : int
end

module Max_degree (P : PARAM) : Algebra_sig.ORACLE
module Regular (P : PARAM) : Algebra_sig.ORACLE

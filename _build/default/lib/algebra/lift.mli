(** Lifting a property algebra to k-lane recursive graphs — the executable
    form of Prop 6.1. The homomorphism class [h*(G)] of a k-lane graph is
    its algebra state with boundary slots named by the host vertices of its
    in/out terminals (together with the basic information carried by the
    [Klane.t] itself). [f_B] is [bridge]; [f_P] is [parent]. *)

module Make (A : Algebra_sig.S) : sig
  val of_small : Lcp_lanewidth.Klane.t -> A.state
  (** State of a base node (V-, E-, or P-node): introduce every vertex, add
      every edge, forget non-terminals. *)

  val terminals : Lcp_lanewidth.Klane.t -> int list
  (** The boundary: in-terminals ∪ out-terminals, sorted. *)

  val bridge :
    A.state * Lcp_lanewidth.Klane.t ->
    A.state * Lcp_lanewidth.Klane.t ->
    i:int ->
    j:int ->
    A.state
  (** [f_B]: disjoint union plus the bridge edge. *)

  val parent :
    child:A.state * Lcp_lanewidth.Klane.t ->
    parent:A.state * Lcp_lanewidth.Klane.t ->
    result:Lcp_lanewidth.Klane.t ->
    A.state
  (** [f_P]: rename the child's glued in-terminals to temporaries, union,
      identify each with the parent's same-lane out-terminal, then forget
      every slot that is not a terminal of the merged graph — the "3k
      temporary terminals" detour in the proof of Prop 6.1. *)

  val eval : Lcp_lanewidth.Hierarchy.t -> A.state
  (** Bottom-up evaluation of a hierarchical decomposition. *)

  val holds : Lcp_lanewidth.Hierarchy.t -> bool
  (** Forget the remaining terminals of the root state and test acceptance:
      whether the underlying graph satisfies the property. *)

  val decide_graph : Lcp_graph.Graph.t -> bool
  (** Run the algebra linearly over a plain graph (introduce all vertices,
      add all edges, forget everything) — a hierarchy-free sanity check of
      the algebra against its oracle. *)
end

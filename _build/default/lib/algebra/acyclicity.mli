(** The acyclicity (forest) algebra: partition of the boundary by tree
    component plus a sticky cycle flag. MSO₂ counterpart:
    [Lcp_mso.Properties.acyclic]. *)

include Algebra_sig.ORACLE

val decode : Lcp_util.Bitenc.reader -> state
(** Inverse of [encode] (for states whose slots are vertex ids). *)

(** The "contains a clique on [size] vertices" algebra (K_c subgraph).

    A clique's edges are added one at a time, possibly with no moment when
    all clique vertices are simultaneously on the boundary, so — like
    {!Triangle_free} — the state remembers completed sub-structure: a
    profile (T, t) asserts that t already-forgotten vertices are pairwise
    adjacent and adjacent to every vertex of the boundary subset T; the
    boundary part T still needs its own edges, which are tracked in the
    boundary adjacency. [Make (struct let size = 3 end)] is the complement
    of {!Triangle_free} (tested against it). MSO₂: ∃x₁…x_c pairwise
    distinct and adjacent. *)

module type PARAM = sig
  val size : int
end

module Make (P : PARAM) : Algebra_sig.ORACLE

(** The q-colorability algebra: the state is the explicit set of proper
    q-colorings restricted to the boundary — the textbook homomorphism
    class, exponential in the boundary size, practical only for small lane
    counts (for q = 2 prefer the compact {!Bipartite}). MSO₂ counterpart:
    [Lcp_mso.Properties.three_colorable]. *)

module type PARAM = sig
  val q : int
end

module Make (P : PARAM) : Algebra_sig.ORACLE

module Three : Algebra_sig.ORACLE
(** [Make (struct let q = 3 end)]. *)

(** The "vertex cover of size <= budget" algebra: profiles fix the cover
    membership of every boundary vertex and map to the minimum number of
    forgotten cover members, capped at budget+1. MSO₂ counterpart:
    [Lcp_mso.Properties.vertex_cover_at_most]. *)

module type PARAM = sig
  val budget : int
end

module Make (P : PARAM) : Algebra_sig.ORACLE

(** Boolean combinators on property algebras (products of homomorphism
    classes), plus two assembled recognizers the paper's lower bound is
    stated with: path graphs and cycle graphs. *)

module Not (A : Algebra_sig.S) : Algebra_sig.S with type state = A.state

module And (A : Algebra_sig.S) (B : Algebra_sig.S) :
  Algebra_sig.S with type state = A.state * B.state

module Or (A : Algebra_sig.S) (B : Algebra_sig.S) :
  Algebra_sig.S with type state = A.state * B.state

(** "The graph is a simple path": connected ∧ acyclic ∧ max degree ≤ 2.
    MSO₂ counterpart: [Lcp_mso.Properties.is_path_graph]. *)
module Is_path_graph : Algebra_sig.ORACLE

(** "The graph is a simple cycle": connected ∧ 2-regular — one half of the
    Ω(log n) path/cycle pair (§1.2). MSO₂ counterpart:
    [Lcp_mso.Properties.is_cycle_graph]. *)
module Is_cycle_graph : Algebra_sig.ORACLE

(** The "diameter ≤ d" algebra (for fixed d this is first-order, hence
    MSO₂: every pair of vertices is joined by a path of ≤ d edges).

    Distances only decrease as composition adds edges, so the state keeps:
    the (capped, closed) metric among boundary slots; the set of
    distance-to-boundary vectors of forgotten vertices (two forgotten
    vertices with the same vector are indistinguishable forever — the
    vector is the homomorphism class of a sealed vertex); which vectors are
    held by ≥ 2 vertices; and, per unordered pair of vector classes, the
    best distance ever available between their members. Every pair is
    re-relaxed through the boundary after each edge; the final verdict is
    taken when the last slot is forgotten (no edge can ever be added with
    fewer than two boundary slots, so the metric is final there).

    Diameter ≤ d implies connectivity: disconnected pairs stay at the
    ∞-cap and reject. *)

module type PARAM = sig
  val d : int
end

module Make (P : PARAM) : Algebra_sig.ORACLE

type t = int list list
(* canonical: each class sorted ascending; classes sorted by head *)

let canonical classes =
  classes
  |> List.filter (fun c -> c <> [])
  |> List.map (List.sort compare)
  |> List.sort compare

let empty = []

let mem t s = List.exists (List.mem s) t

let add_singleton t s =
  if mem t s then invalid_arg "Slot_partition.add_singleton: slot exists";
  canonical ([ s ] :: t)

let class_of t s = List.find_opt (List.mem s) t

let merge t a b =
  match (class_of t a, class_of t b) with
  | Some ca, Some cb ->
      if ca == cb || ca = cb then t
      else
        canonical ((ca @ cb) :: List.filter (fun c -> c <> ca && c <> cb) t)
  | _ -> invalid_arg "Slot_partition.merge: unknown slot"

let same_class t a b =
  match (class_of t a, class_of t b) with
  | Some ca, Some cb -> ca = cb
  | _ -> invalid_arg "Slot_partition.same_class: unknown slot"

let remove t s =
  match class_of t s with
  | None -> invalid_arg "Slot_partition.remove: unknown slot"
  | Some c ->
      let c' = List.filter (fun x -> x <> s) c in
      (canonical (c' :: List.filter (fun cl -> cl <> c) t), c' = [])

let slots t = List.concat t |> List.sort compare

let classes t = t

let class_count t = List.length t

let rename t ~old_slot ~new_slot =
  if mem t new_slot then invalid_arg "Slot_partition.rename: slot exists";
  canonical
    (List.map (List.map (fun x -> if x = old_slot then new_slot else x)) t)

let union t1 t2 =
  let s1 = slots t1 in
  if List.exists (fun s -> mem t2 s) s1 then
    invalid_arg "Slot_partition.union: slot sets not disjoint";
  canonical (t1 @ t2)

let equal a b = a = b
let compare = compare

let encode w t =
  Lcp_util.Bitenc.varint w (List.length t);
  List.iter
    (fun c ->
      Lcp_util.Bitenc.varint w (List.length c);
      List.iter (fun s -> Lcp_util.Bitenc.varint w (abs s)) c)
    t

let rec read_n n f = if n <= 0 then [] else
  let x = f () in
  x :: read_n (n - 1) f

let decode r =
  let nclasses = Lcp_util.Bitenc.read_varint r in
  canonical
    (read_n nclasses (fun () ->
         let size = Lcp_util.Bitenc.read_varint r in
         read_n size (fun () -> Lcp_util.Bitenc.read_varint r)))

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat " | "
       (List.map
          (fun c -> String.concat "," (List.map string_of_int c))
          t))

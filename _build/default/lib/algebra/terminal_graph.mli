(** k-terminal graphs and their composition (Def 2.3) — the classical
    algebra behind Courcelle's theorem, of which the paper's k-lane graphs
    are the specialized variant (Prop 6.1 reduces k-lane merges to
    3k-terminal compositions).

    A k-terminal graph is a graph with an ordered, injective assignment of
    at most k terminal positions to vertices. The composition
    [⊙_{f1,f2}] takes the disjoint union of two k-terminal graphs, makes
    position i's terminal the [f1 i]-th terminal of the left operand and
    the [f2 i]-th of the right (gluing the two vertices when both are
    given), and drops unreferenced terminals to non-terminal status.

    {!Eval} evaluates any property algebra compositionally over a term —
    the executable statement of Prop 2.4: the homomorphism class of a
    composition is a function of the classes of the parts. Tests check it
    against evaluating the materialized graph directly. *)

type t = private {
  graph : Lcp_graph.Graph.t;
  terminals : (int * int) list;  (** position (1-based) ↦ vertex, sorted *)
}

val make :
  graph:Lcp_graph.Graph.t -> terminals:(int * int) list -> t
(** Validates: positions ≥ 1 and distinct, vertices distinct and in
    range. *)

val terminal : t -> int -> int option

type term =
  | Base of t
  | Compose of {
      k : int;
      f1 : int -> int option;  (** result position ↦ left position *)
      f2 : int -> int option;
      left : term;
      right : term;
    }

val eval_graph : term -> t
(** Materialize the term: disjoint unions with terminal gluing. Raises
    [Invalid_argument] if some [f1]/[f2] references a missing terminal or
    maps two result positions to one vertex. *)

module Eval (A : Algebra_sig.S) : sig
  val state : term -> A.state
  (** Compositional evaluation: boundary slots are terminal positions.
      Equals (tested) the state obtained from the materialized graph. *)

  val holds : term -> bool
end

module Graph = Lcp_graph.Graph
module UF = Lcp_graph.Union_find

type t = {
  graph : Graph.t;
  terminals : (int * int) list;
}

let make ~graph ~terminals =
  let terminals = List.sort compare terminals in
  let positions = List.map fst terminals and vertices = List.map snd terminals in
  if List.exists (fun p -> p < 1) positions then
    invalid_arg "Terminal_graph.make: positions are 1-based";
  if List.length (List.sort_uniq compare positions) <> List.length positions
  then invalid_arg "Terminal_graph.make: duplicate position";
  if List.length (List.sort_uniq compare vertices) <> List.length vertices then
    invalid_arg "Terminal_graph.make: terminals must be distinct vertices";
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n graph then
        invalid_arg "Terminal_graph.make: terminal out of range")
    vertices;
  { graph; terminals }

let terminal t p = List.assoc_opt p t.terminals

type term =
  | Base of t
  | Compose of {
      k : int;
      f1 : int -> int option;
      f2 : int -> int option;
      left : term;
      right : term;
    }

let rec eval_graph = function
  | Base t -> t
  | Compose { k; f1; f2; left; right } ->
      let l = eval_graph left and r = eval_graph right in
      let n1 = Graph.n l.graph and n2 = Graph.n r.graph in
      let uf = UF.create (n1 + n2) in
      let resolve name f t shift p =
        match f p with
        | None -> None
        | Some q -> (
            match terminal t q with
            | Some v -> Some (v + shift)
            | None ->
                invalid_arg
                  (Printf.sprintf "Terminal_graph.eval_graph: %s references \
                                   missing terminal %d" name q))
      in
      (* glue *)
      for p = 1 to k do
        match (resolve "f1" f1 l 0 p, resolve "f2" f2 r n1 p) with
        | Some a, Some b -> ignore (UF.union uf a b)
        | _ -> ()
      done;
      (* compress to new ids *)
      let rep = Array.init (n1 + n2) (UF.find uf) in
      let ids = Array.make (n1 + n2) (-1) in
      let next = ref 0 in
      Array.iter
        (fun r ->
          if ids.(r) < 0 then begin
            ids.(r) <- !next;
            incr next
          end)
        rep;
      let map v = ids.(rep.(v)) in
      let edges =
        List.map (fun (u, v) -> (map u, map v)) (Graph.edges l.graph)
        @ List.map
            (fun (u, v) -> (map (u + n1), map (v + n1)))
            (Graph.edges r.graph)
      in
      let graph = Graph.of_edges ~n:!next edges in
      let terminals =
        List.filter_map
          (fun p ->
            match (resolve "f1" f1 l 0 p, resolve "f2" f2 r n1 p) with
            | Some a, _ -> Some (p, map a)
            | None, Some b -> Some (p, map b)
            | None, None -> None)
          (List.init k (fun i -> i + 1))
      in
      make ~graph ~terminals

module Eval (A : Algebra_sig.S) = struct
  let big = 1 lsl 40

  let forget_to st keep =
    List.fold_left
      (fun st s -> if List.mem s keep then st else A.forget st s)
      st (A.slots st)

  let rec state = function
    | Base t ->
        let slot_of v =
          match List.find_opt (fun (_, u) -> u = v) t.terminals with
          | Some (p, _) -> p
          | None -> -(v + 1)
        in
        let st =
          Graph.fold_vertices
            (fun v st -> A.introduce st (slot_of v))
            t.graph A.empty
        in
        let st =
          Graph.fold_edges
            (fun (u, v) st -> A.add_edge st (slot_of u) (slot_of v))
            t.graph st
        in
        forget_to st (List.map fst t.terminals)
    | Compose { k; f1; f2; left; right } ->
        let sl = state left and sr = state right in
        let positions = List.init k (fun i -> i + 1) in
        (* left slots: to big+j when referenced, else forgotten *)
        let sl =
          List.fold_left
            (fun st a ->
              match
                List.find_opt (fun j -> f1 j = Some a) positions
              with
              | Some j -> A.rename st ~old_slot:a ~new_slot:(big + j)
              | None -> A.forget st a)
            sl (A.slots sl)
        in
        let sr =
          List.fold_left
            (fun st b ->
              match List.find_opt (fun j -> f2 j = Some b) positions with
              | Some j -> A.rename st ~old_slot:b ~new_slot:(-(j + 1))
              | None -> A.forget st b)
            sr (A.slots sr)
        in
        let st = A.union sl sr in
        let st =
          List.fold_left
            (fun st j ->
              let from_left = List.mem (big + j) (A.slots st) in
              let from_right = List.mem (-(j + 1)) (A.slots st) in
              match (from_left, from_right) with
              | true, true -> A.identify st ~keep:(big + j) ~drop:(-(j + 1))
              | false, true ->
                  A.rename st ~old_slot:(-(j + 1)) ~new_slot:(big + j)
              | _ -> st)
            st positions
        in
        (* final positions *)
        List.fold_left
          (fun st j ->
            if List.mem (big + j) (A.slots st) then
              A.rename st ~old_slot:(big + j) ~new_slot:j
            else st)
          st positions

  let holds term = A.accepts (forget_to (state term) [])
end

(** The connectivity algebra: the homomorphism class is the partition of
    the boundary into connected components plus a (capped) count of
    components that already lost their last boundary vertex. Connectivity
    is MSO₂ ([Lcp_mso.Properties.connected]); tests check this algebra
    against both that formula and a BFS oracle. *)

include Algebra_sig.ORACLE

val decode : Lcp_util.Bitenc.reader -> state
(** Inverse of [encode] (for states whose slots are vertex ids). *)

(** The bipartiteness (2-colorability) algebra: a parity partition of the
    boundary plus a sticky odd-cycle flag — the compact state that replaces
    the exponential set-of-colorings view. MSO₂ counterpart:
    [Lcp_mso.Properties.bipartite]. *)

include Algebra_sig.ORACLE

val decode : Lcp_util.Bitenc.reader -> state
(** Inverse of [encode] (for states whose slots are vertex ids). *)

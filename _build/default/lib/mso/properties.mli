(** The property catalogue, written as genuine MSO₂ formulas.

    These are the formal counterparts of the property algebras in
    [Lcp_algebra]: the tests check, on exhaustive families of small graphs,
    that each algebra decides exactly the same property as the naive
    evaluation of its formula — the correctness contract of Prop 2.4. *)

val connected : Formula.t
val acyclic : Formula.t
val tree : Formula.t
val bipartite : Formula.t
val three_colorable : Formula.t
val perfect_matching : Formula.t
val hamiltonian_cycle : Formula.t
val hamiltonian_path : Formula.t
val triangle_free : Formula.t

val vertex_cover_at_most : int -> Formula.t
val independent_set_at_least : int -> Formula.t
val dominating_set_at_most : int -> Formula.t
val max_degree_at_most : int -> Formula.t
val regular : int -> Formula.t
val clique_at_least : int -> Formula.t

val diameter_at_most : int -> Formula.t
(** First-order for fixed d: every pair is joined by a lazy walk through
    d-1 stepping stones. *)

val is_path_graph : Formula.t
val is_cycle_graph : Formula.t

val catalogue : (string * Formula.t) list
(** Everything above (with small parameter instances), by name. *)

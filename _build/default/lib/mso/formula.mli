(** MSO₂ formulas over graphs (§1.2): four sorts of variables — vertices,
    edges, vertex sets, edge sets — with quantifiers over each sort, the
    basic connectives, and the atomic predicates [∈], [inc], [adj], and
    sort-wise equality. *)

type t =
  | True
  | False
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists_v of string * t
  | Forall_v of string * t
  | Exists_e of string * t
  | Forall_e of string * t
  | Exists_vset of string * t
  | Forall_vset of string * t
  | Exists_eset of string * t
  | Forall_eset of string * t
  | Mem_v of string * string  (** v ∈ U *)
  | Mem_e of string * string  (** e ∈ F *)
  | Inc of string * string  (** inc(e, v): e is incident to v *)
  | Adj of string * string  (** adj(u, v) *)
  | Eq_v of string * string
  | Eq_e of string * string
  | Eq_vset of string * string
  | Eq_eset of string * string

val quantifier_rank : t -> int
val size : t -> int
val pp : Format.formatter -> t -> unit

(** Convenience constructors. *)

val conj : t list -> t
val disj : t list -> t
val pairwise_distinct_v : string list -> t

module Graph = Lcp_graph.Graph

type value =
  | Vertex of int
  | Edge of Graph.edge
  | Vertex_set of int list
  | Edge_set of Graph.edge list

type env = (string * value) list

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> invalid_arg ("Mso.Eval: unbound variable " ^ x)

let as_vertex env x =
  match lookup env x with
  | Vertex v -> v
  | _ -> invalid_arg ("Mso.Eval: not a vertex variable: " ^ x)

let as_edge env x =
  match lookup env x with
  | Edge e -> e
  | _ -> invalid_arg ("Mso.Eval: not an edge variable: " ^ x)

let as_vset env x =
  match lookup env x with
  | Vertex_set s -> s
  | _ -> invalid_arg ("Mso.Eval: not a vertex-set variable: " ^ x)

let as_eset env x =
  match lookup env x with
  | Edge_set s -> s
  | _ -> invalid_arg ("Mso.Eval: not an edge-set variable: " ^ x)

let subsets xs =
  List.fold_left
    (fun acc x -> acc @ List.map (fun s -> x :: s) acc)
    [ [] ] xs

let eval ?(env = []) g formula =
  let vertices = List.init (Graph.n g) (fun v -> v) in
  let edges = Graph.edges g in
  let rec go env f =
    match f with
    | Formula.True -> true
    | Formula.False -> false
    | Formula.Not f -> not (go env f)
    | Formula.And (a, b) -> go env a && go env b
    | Formula.Or (a, b) -> go env a || go env b
    | Formula.Implies (a, b) -> (not (go env a)) || go env b
    | Formula.Iff (a, b) -> go env a = go env b
    | Formula.Exists_v (x, f) ->
        List.exists (fun v -> go ((x, Vertex v) :: env) f) vertices
    | Formula.Forall_v (x, f) ->
        List.for_all (fun v -> go ((x, Vertex v) :: env) f) vertices
    | Formula.Exists_e (x, f) ->
        List.exists (fun e -> go ((x, Edge e) :: env) f) edges
    | Formula.Forall_e (x, f) ->
        List.for_all (fun e -> go ((x, Edge e) :: env) f) edges
    | Formula.Exists_vset (x, f) ->
        List.exists
          (fun s -> go ((x, Vertex_set (List.sort compare s)) :: env) f)
          (subsets vertices)
    | Formula.Forall_vset (x, f) ->
        List.for_all
          (fun s -> go ((x, Vertex_set (List.sort compare s)) :: env) f)
          (subsets vertices)
    | Formula.Exists_eset (x, f) ->
        List.exists
          (fun s -> go ((x, Edge_set (List.sort compare s)) :: env) f)
          (subsets edges)
    | Formula.Forall_eset (x, f) ->
        List.for_all
          (fun s -> go ((x, Edge_set (List.sort compare s)) :: env) f)
          (subsets edges)
    | Formula.Mem_v (v, u) -> List.mem (as_vertex env v) (as_vset env u)
    | Formula.Mem_e (e, s) -> List.mem (as_edge env e) (as_eset env s)
    | Formula.Inc (e, v) ->
        let (a, b) = as_edge env e in
        let x = as_vertex env v in
        x = a || x = b
    | Formula.Adj (u, v) -> Graph.mem_edge g (as_vertex env u) (as_vertex env v)
    | Formula.Eq_v (a, b) -> as_vertex env a = as_vertex env b
    | Formula.Eq_e (a, b) -> as_edge env a = as_edge env b
    | Formula.Eq_vset (a, b) -> as_vset env a = as_vset env b
    | Formula.Eq_eset (a, b) -> as_eset env a = as_eset env b
  in
  go env formula

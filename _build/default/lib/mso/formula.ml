type t =
  | True
  | False
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Iff of t * t
  | Exists_v of string * t
  | Forall_v of string * t
  | Exists_e of string * t
  | Forall_e of string * t
  | Exists_vset of string * t
  | Forall_vset of string * t
  | Exists_eset of string * t
  | Forall_eset of string * t
  | Mem_v of string * string
  | Mem_e of string * string
  | Inc of string * string
  | Adj of string * string
  | Eq_v of string * string
  | Eq_e of string * string
  | Eq_vset of string * string
  | Eq_eset of string * string

let rec quantifier_rank = function
  | True | False | Mem_v _ | Mem_e _ | Inc _ | Adj _ | Eq_v _ | Eq_e _
  | Eq_vset _ | Eq_eset _ ->
      0
  | Not f -> quantifier_rank f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) ->
      max (quantifier_rank a) (quantifier_rank b)
  | Exists_v (_, f)
  | Forall_v (_, f)
  | Exists_e (_, f)
  | Forall_e (_, f)
  | Exists_vset (_, f)
  | Forall_vset (_, f)
  | Exists_eset (_, f)
  | Forall_eset (_, f) ->
      1 + quantifier_rank f

let rec size = function
  | True | False | Mem_v _ | Mem_e _ | Inc _ | Adj _ | Eq_v _ | Eq_e _
  | Eq_vset _ | Eq_eset _ ->
      1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) | Iff (a, b) -> 1 + size a + size b
  | Exists_v (_, f)
  | Forall_v (_, f)
  | Exists_e (_, f)
  | Forall_e (_, f)
  | Exists_vset (_, f)
  | Forall_vset (_, f)
  | Exists_eset (_, f)
  | Forall_eset (_, f) ->
      1 + size f

let rec pp ppf f =
  let open Format in
  match f with
  | True -> fprintf ppf "true"
  | False -> fprintf ppf "false"
  | Not f -> fprintf ppf "¬%a" pp_atomish f
  | And (a, b) -> fprintf ppf "%a ∧ %a" pp_atomish a pp_atomish b
  | Or (a, b) -> fprintf ppf "%a ∨ %a" pp_atomish a pp_atomish b
  | Implies (a, b) -> fprintf ppf "%a → %a" pp_atomish a pp_atomish b
  | Iff (a, b) -> fprintf ppf "%a ↔ %a" pp_atomish a pp_atomish b
  | Exists_v (x, f) -> fprintf ppf "∃%s.%a" x pp f
  | Forall_v (x, f) -> fprintf ppf "∀%s.%a" x pp f
  | Exists_e (x, f) -> fprintf ppf "∃%s:e.%a" x pp f
  | Forall_e (x, f) -> fprintf ppf "∀%s:e.%a" x pp f
  | Exists_vset (x, f) -> fprintf ppf "∃%s⊆V.%a" x pp f
  | Forall_vset (x, f) -> fprintf ppf "∀%s⊆V.%a" x pp f
  | Exists_eset (x, f) -> fprintf ppf "∃%s⊆E.%a" x pp f
  | Forall_eset (x, f) -> fprintf ppf "∀%s⊆E.%a" x pp f
  | Mem_v (v, u) -> fprintf ppf "%s∈%s" v u
  | Mem_e (e, s) -> fprintf ppf "%s∈%s" e s
  | Inc (e, v) -> fprintf ppf "inc(%s,%s)" e v
  | Adj (u, v) -> fprintf ppf "adj(%s,%s)" u v
  | Eq_v (a, b) | Eq_e (a, b) | Eq_vset (a, b) | Eq_eset (a, b) ->
      fprintf ppf "%s=%s" a b

and pp_atomish ppf f =
  match f with
  | True | False | Mem_v _ | Mem_e _ | Inc _ | Adj _ | Eq_v _ | Eq_e _
  | Eq_vset _ | Eq_eset _ | Not _ ->
      pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f

let conj = function [] -> True | f :: fs -> List.fold_left (fun a b -> And (a, b)) f fs
let disj = function [] -> False | f :: fs -> List.fold_left (fun a b -> Or (a, b)) f fs

let pairwise_distinct_v vars =
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> Not (Eq_v (x, y))) rest @ pairs rest
  in
  conj (pairs vars)

open Formula

(* (V, F) is connected and spanning, where [crossing] may restrict the
   witness edge to an edge set: for every proper non-empty vertex subset U
   there is a crossing edge. With [in_set = None] the edge ranges over all
   edges of the graph. *)
let spanning_connected ?in_set () =
  let crossing =
    let base =
      conj
        [ Inc ("e", "cu"); Inc ("e", "cv"); Mem_v ("cu", "U");
          Not (Mem_v ("cv", "U")) ]
    in
    let base =
      match in_set with None -> base | Some f -> And (Mem_e ("e", f), base)
    in
    Exists_e ("e", Exists_v ("cu", Exists_v ("cv", base)))
  in
  Forall_vset
    ( "U",
      Implies
        ( And
            ( Exists_v ("x", Mem_v ("x", "U")),
              Exists_v ("y", Not (Mem_v ("y", "U"))) ),
          crossing ) )

let connected = spanning_connected ()

(* a cycle exists iff some non-empty edge set F has minimum F-degree >= 2
   on its incident vertices *)
let has_cycle_in ?(set = "F") () =
  And
    ( Exists_e ("he", Mem_e ("he", set)),
      Forall_e
        ( "he",
          Forall_v
            ( "hv",
              Implies
                ( And (Mem_e ("he", set), Inc ("he", "hv")),
                  Exists_e
                    ( "he1",
                      Exists_e
                        ( "he2",
                          conj
                            [ Mem_e ("he1", set); Mem_e ("he2", set);
                              Not (Eq_e ("he1", "he2")); Inc ("he1", "hv");
                              Inc ("he2", "hv") ] ) ) ) ) ) )

let acyclic = Not (Exists_eset ("F", has_cycle_in ~set:"F" ()))

let tree = And (connected, acyclic)

let proper_wrt same_class =
  Forall_e
    ( "e",
      Forall_v
        ( "u",
          Forall_v
            ( "v",
              Implies
                ( conj
                    [ Inc ("e", "u"); Inc ("e", "v"); Not (Eq_v ("u", "v")) ],
                  Not same_class ) ) ) )

let bipartite =
  Exists_vset ("U", proper_wrt (Iff (Mem_v ("u", "U"), Mem_v ("v", "U"))))

let three_colorable =
  let in1 x = Mem_v (x, "U1") in
  let in2 x = And (Mem_v (x, "U2"), Not (Mem_v (x, "U1"))) in
  let in3 x = And (Not (Mem_v (x, "U1")), Not (Mem_v (x, "U2"))) in
  let same =
    disj
      [ And (in1 "u", in1 "v"); And (in2 "u", in2 "v"); And (in3 "u", in3 "v") ]
  in
  Exists_vset ("U1", Exists_vset ("U2", proper_wrt same))

let perfect_matching =
  Exists_eset
    ( "F",
      Forall_v
        ( "v",
          And
            ( Exists_e ("e", And (Mem_e ("e", "F"), Inc ("e", "v"))),
              Forall_e
                ( "e1",
                  Forall_e
                    ( "e2",
                      Implies
                        ( conj
                            [ Mem_e ("e1", "F"); Mem_e ("e2", "F");
                              Inc ("e1", "v"); Inc ("e2", "v") ],
                          Eq_e ("e1", "e2") ) ) ) ) ) )

(* every vertex has at most two incident edges in F *)
let f_degree_at_most_2 =
  Forall_v
    ( "v",
      Forall_e
        ( "e1",
          Forall_e
            ( "e2",
              Forall_e
                ( "e3",
                  Implies
                    ( conj
                        [ Mem_e ("e1", "F"); Mem_e ("e2", "F");
                          Mem_e ("e3", "F"); Inc ("e1", "v"); Inc ("e2", "v");
                          Inc ("e3", "v") ],
                      disj
                        [ Eq_e ("e1", "e2"); Eq_e ("e1", "e3");
                          Eq_e ("e2", "e3") ] ) ) ) ) )

(* every vertex has exactly two incident edges in F *)
let f_degree_exactly_2 =
  And
    ( f_degree_at_most_2,
      Forall_v
        ( "v",
          Exists_e
            ( "d1",
              Exists_e
                ( "d2",
                  conj
                    [ Mem_e ("d1", "F"); Mem_e ("d2", "F");
                      Not (Eq_e ("d1", "d2")); Inc ("d1", "v"); Inc ("d2", "v") ] ) ) ) )

let hamiltonian_cycle =
  Exists_eset ("F", And (f_degree_exactly_2, spanning_connected ~in_set:"F" ()))

let hamiltonian_path =
  Exists_eset ("F", And (f_degree_at_most_2, spanning_connected ~in_set:"F" ()))

let triangle_free =
  Not
    (Exists_v
       ( "u",
         Exists_v
           ( "v",
             Exists_v
               ( "w",
                 conj
                   [ Adj ("u", "v"); Adj ("v", "w"); Adj ("u", "w") ] ) ) ))

let vars prefix c = List.init c (fun i -> Printf.sprintf "%s%d" prefix i)

let vertex_cover_at_most c =
  let xs = vars "x" c in
  let covered =
    Exists_v
      ( "cv",
        And (Inc ("ce", "cv"), disj (List.map (fun x -> Eq_v ("cv", x)) xs)) )
  in
  List.fold_right
    (fun x f -> Exists_v (x, f))
    xs
    (Forall_e ("ce", covered))

let independent_set_at_least c =
  let xs = vars "x" c in
  let rec nonadj = function
    | [] -> []
    | x :: rest -> List.map (fun y -> Not (Adj (x, y))) rest @ nonadj rest
  in
  List.fold_right
    (fun x f -> Exists_v (x, f))
    xs
    (And (pairwise_distinct_v xs, conj (nonadj xs)))

let dominating_set_at_most c =
  let xs = vars "x" c in
  let dominated =
    disj (List.concat_map (fun x -> [ Eq_v ("dv", x); Adj ("dv", x) ]) xs)
  in
  List.fold_right (fun x f -> Exists_v (x, f)) xs (Forall_v ("dv", dominated))

let max_degree_at_most d =
  let es = vars "e" (d + 1) in
  let rec distinct = function
    | [] -> []
    | x :: rest -> List.map (fun y -> Not (Eq_e (x, y))) rest @ distinct rest
  in
  Forall_v
    ( "v",
      Not
        (List.fold_right
           (fun e f -> Exists_e (e, f))
           es
           (conj (distinct es @ List.map (fun e -> Inc (e, "v")) es))) )

let min_degree_at_least d =
  let es = vars "e" d in
  let rec distinct = function
    | [] -> []
    | x :: rest -> List.map (fun y -> Not (Eq_e (x, y))) rest @ distinct rest
  in
  Forall_v
    ( "v",
      List.fold_right
        (fun e f -> Exists_e (e, f))
        es
        (conj (distinct es @ List.map (fun e -> Inc (e, "v")) es)) )

let regular d = And (max_degree_at_most d, min_degree_at_least d)

let clique_at_least c =
  let xs = vars "x" c in
  let rec adjacent = function
    | [] -> []
    | x :: rest -> List.map (fun y -> Adj (x, y)) rest @ adjacent rest
  in
  List.fold_right
    (fun x f -> Exists_v (x, f))
    xs
    (And (pairwise_distinct_v xs, conj (adjacent xs)))

(* dist(u, v) <= d: there are d-1 stepping stones forming a lazy walk *)
let diameter_at_most d =
  let ws = vars "w" (max 0 (d - 1)) in
  let step a b = Or (Eq_v (a, b), Adj (a, b)) in
  let rec chain prev = function
    | [] -> step prev "dv"
    | w :: rest -> And (step prev w, chain w rest)
  in
  Forall_v
    ( "du",
      Forall_v
        ( "dv",
          List.fold_right (fun w f -> Exists_v (w, f)) ws (chain "du" ws) ) )

let is_path_graph = conj [ connected; acyclic; max_degree_at_most 2 ]
let is_cycle_graph = And (connected, regular 2)

let catalogue =
  [
    ("connected", connected);
    ("acyclic", acyclic);
    ("tree", tree);
    ("bipartite", bipartite);
    ("three_colorable", three_colorable);
    ("perfect_matching", perfect_matching);
    ("hamiltonian_cycle", hamiltonian_cycle);
    ("hamiltonian_path", hamiltonian_path);
    ("triangle_free", triangle_free);
    ("vertex_cover<=2", vertex_cover_at_most 2);
    ("independent_set>=3", independent_set_at_least 3);
    ("dominating_set<=2", dominating_set_at_most 2);
    ("max_degree<=2", max_degree_at_most 2);
    ("2-regular", regular 2);
    ("clique>=3", clique_at_least 3);
    ("diameter<=2", diameter_at_most 2);
    ("is_path_graph", is_path_graph);
    ("is_cycle_graph", is_cycle_graph);
  ]

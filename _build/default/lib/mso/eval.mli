(** Naive MSO₂ model checking by exhaustive quantifier expansion.

    Exponential in the number of set quantifiers (2ⁿ assignments each) — by
    design: this is the trusted, obviously-correct ground truth against
    which the compositional property algebras are tested on small graphs.
    It is NOT part of the certification pipeline. *)

type value =
  | Vertex of int
  | Edge of Lcp_graph.Graph.edge
  | Vertex_set of int list  (** sorted *)
  | Edge_set of Lcp_graph.Graph.edge list  (** sorted *)

type env = (string * value) list

val eval : ?env:env -> Lcp_graph.Graph.t -> Formula.t -> bool
(** Free variables must be bound in [env]. Raises [Invalid_argument] on an
    unbound or wrongly-sorted variable. *)

lib/mso/eval.ml: Formula Lcp_graph List

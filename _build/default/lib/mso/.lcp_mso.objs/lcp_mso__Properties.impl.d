lib/mso/properties.ml: Formula List Printf

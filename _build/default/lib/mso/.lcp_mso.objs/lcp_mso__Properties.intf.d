lib/mso/properties.mli: Formula

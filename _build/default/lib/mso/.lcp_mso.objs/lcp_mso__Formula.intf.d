lib/mso/formula.mli: Format

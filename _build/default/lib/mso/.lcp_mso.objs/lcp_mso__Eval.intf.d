lib/mso/eval.mli: Formula Lcp_graph

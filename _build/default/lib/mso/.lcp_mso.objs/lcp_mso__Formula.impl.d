lib/mso/formula.ml: Format List

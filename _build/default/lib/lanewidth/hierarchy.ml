module Graph = Lcp_graph.Graph

type t =
  | V_node of Klane.t
  | E_node of Klane.t
  | P_node of Klane.t
  | B_node of bnode
  | T_node of tnode

and bnode = { result : Klane.t; left : t; right : t; i : int; j : int }
and tnode = { t_result : Klane.t; tree : ttree }
and ttree = { piece : t; children : ttree list; merged : Klane.t }

let klane_of = function
  | V_node k | E_node k | P_node k -> k
  | B_node { result; _ } -> result
  | T_node { t_result; _ } -> t_result

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let validate_v k =
  match (k.Klane.vertices, Klane.lanes k) with
  | [ v ], [ i ] ->
      if Klane.tau_in k i = v && Klane.tau_out k i = v && k.Klane.edges = []
      then Ok ()
      else err "V-node: terminals must both be its unique vertex"
  | _ -> err "V-node: must have exactly one vertex and one lane"

let validate_e k =
  match (k.Klane.edges, Klane.lanes k) with
  | [ (u, v) ], [ i ] ->
      let tin = Klane.tau_in k i and tout = Klane.tau_out k i in
      if
        List.sort compare [ tin; tout ] = [ u; v ]
        && tin <> tout
        && List.length k.Klane.vertices = 2
      then Ok ()
      else err "E-node: terminals must be the two distinct edge endpoints"
  | _ -> err "E-node: must have exactly one edge and one lane"

let validate_p k =
  let lanes = Klane.lanes k in
  let path = List.map (fun i -> Klane.tau_in k i) lanes in
  let rec consecutive = function
    | a :: (b :: _ as rest) ->
        if Graph.mem_edge k.Klane.host a b then consecutive rest
        else err "P-node: lane terminals are not a host path"
    | [] | [ _ ] -> Ok ()
  in
  if List.exists (fun i -> Klane.tau_in k i <> Klane.tau_out k i) lanes then
    err "P-node: in and out terminals must coincide"
  else if List.sort compare path <> k.Klane.vertices then
    err "P-node: vertices must be exactly the terminals"
  else
    let* () = consecutive path in
    let expected =
      let rec es = function
        | a :: (b :: _ as rest) -> Graph.canonical_edge a b :: es rest
        | [] | [ _ ] -> []
      in
      List.sort compare (es path)
    in
    if expected = k.Klane.edges then Ok ()
    else err "P-node: edges must be exactly the path edges"

let rec validate node =
  match node with
  | V_node k -> validate_v k
  | E_node k -> validate_e k
  | P_node k -> validate_p k
  | B_node { result; left; right; i; j } ->
      let shape_ok = function
        | V_node _ | T_node _ -> true
        | E_node _ | P_node _ | B_node _ -> false
      in
      if not (shape_ok left && shape_ok right) then
        err "B-node: parts must be V-nodes or T-nodes"
      else
        let* () = validate left in
        let* () = validate right in
        let recomputed =
          try Ok (Merge.bridge_merge (klane_of left) (klane_of right) ~i ~j)
          with Invalid_argument m -> Error m
        in
        let* recomputed = recomputed in
        if Klane.equal recomputed result then Ok ()
        else err "B-node: result does not match Bridge-merge of its parts"
  | T_node { t_result = result; tree } ->
      let* () = validate_ttree tree in
      if Klane.equal tree.merged result then Ok ()
      else err "T-node: result does not match Tree-merge of its tree"

and validate_ttree { piece; children; merged } =
  let shape_ok = function
    | E_node _ | P_node _ | B_node _ -> true
    | V_node _ | T_node _ -> false
  in
  if not (shape_ok piece) then
    err "T-node member: must be an E-node, P-node, or B-node"
  else
    let* () = validate piece in
    let* () =
      List.fold_left
        (fun acc c -> match acc with Error _ -> acc | Ok () -> validate_ttree c)
        (Ok ()) children
    in
    let recomputed =
      try
        Ok
          (List.fold_left
             (fun acc c -> Merge.parent_merge ~child:c.merged ~parent:acc)
             (klane_of piece) children)
      with Invalid_argument m -> Error m
    in
    let* recomputed = recomputed in
    (* sibling lane disjointness and lane containment are enforced by
       parent_merge preconditions plus the explicit check: *)
    let pl = Klane.lanes (klane_of piece) in
    let rec disjoint_siblings = function
      | [] -> Ok ()
      | c :: rest ->
          let cl = Klane.lanes c.merged in
          if not (List.for_all (fun i -> List.mem i pl) cl) then
            err "T-node member: child lanes not a subset of parent lanes"
          else if
            List.exists
              (fun c' ->
                List.exists (fun i -> List.mem i (Klane.lanes c'.merged)) cl)
              rest
          then err "T-node member: sibling lane sets intersect"
          else disjoint_siblings rest
    in
    let* () = disjoint_siblings children in
    if Klane.equal recomputed merged then Ok ()
    else err "T-node member: merged k-lane graph mismatch"

(* children for the depth/size measures of Observation 5.5 *)
let hierarchy_children = function
  | V_node _ | E_node _ | P_node _ -> []
  | B_node { left; right; _ } -> [ left; right ]
  | T_node { tree; _ } ->
      let rec members t = t.piece :: List.concat_map members t.children in
      members tree

let rec depth node =
  match hierarchy_children node with
  | [] -> 1
  | cs -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 cs

let rec node_count node =
  1 + List.fold_left (fun acc c -> acc + node_count c) 0 (hierarchy_children node)

let rec fold f acc node =
  List.fold_left (fold f) (f acc node) (hierarchy_children node)

let edge_congestion node =
  let tbl = Hashtbl.create 256 in
  let count n =
    List.iter
      (fun e ->
        Hashtbl.replace tbl e (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e)))
      (klane_of n).Klane.edges
  in
  fold (fun () n -> count n) () node;
  Hashtbl.fold (fun _ c acc -> max acc c) tbl 0

let max_lane node =
  fold
    (fun acc n ->
      List.fold_left max acc (Klane.lanes (klane_of n)))
    0 node

let pp_summary ppf node =
  let v, e, p, b, t =
    fold
      (fun (v, e, p, b, t) n ->
        match n with
        | V_node _ -> (v + 1, e, p, b, t)
        | E_node _ -> (v, e + 1, p, b, t)
        | P_node _ -> (v, e, p + 1, b, t)
        | B_node _ -> (v, e, p, b + 1, t)
        | T_node _ -> (v, e, p, b, t + 1))
      (0, 0, 0, 0, 0) node
  in
  Format.fprintf ppf
    "hierarchy: depth=%d nodes=%d (V=%d E=%d P=%d B=%d T=%d) congestion=%d"
    (depth node) (node_count node) v e p b t (edge_congestion node)

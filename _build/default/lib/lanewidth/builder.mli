(** Prop 5.6: every graph of lanewidth k can be constructed as a T-node
    with parameter k.

    The builder replays a construction trace, maintaining the tree T of the
    induction: the initial path becomes a P-node; each V-insert adds an
    E-node below the lowest tree node containing the current designated
    vertex of its lane; each E-insert adds a B-node at the lowest common
    ancestor, condensing the subtrees between (Cases 2.1–2.3). *)

val of_trace : Trace.t -> Hierarchy.t
(** The hierarchy of [Trace.eval trace] (a T-node), on the trace's own
    vertex numbering. *)

val of_trace_on :
  host:Lcp_graph.Graph.t -> to_host:int array -> Trace.t -> Hierarchy.t
(** Same, but with trace vertices renamed into an existing host graph via
    [to_host] (as produced by [Prop52.trace_of_partition]); the host must
    contain every trace edge. *)

(** Hierarchical decompositions of k-lane recursive graphs (§5.3).

    Five node types: V-node, E-node, and P-node are the base shapes; a
    B-node is a Bridge-merge of two graphs each of which is a V-node or a
    T-node; a T-node is a Tree-merge of a tree whose members are E-nodes,
    P-nodes, or B-nodes.

    Observation 5.5: every root-to-leaf path of a hierarchical
    decomposition with parameter k contains at most 2k nodes, and since the
    merges never merge edges, each edge of the underlying graph appears in
    at most 2k nodes — the O(1) congestion that makes O(log n)-bit
    certification possible. *)

type t =
  | V_node of Klane.t
  | E_node of Klane.t
  | P_node of Klane.t
  | B_node of bnode
  | T_node of tnode

and bnode = {
  result : Klane.t;  (** Bridge-merge(left, right, i, j) *)
  left : t;  (** V-node or T-node *)
  right : t;  (** V-node or T-node *)
  i : int;
  j : int;
}

and tnode = { t_result : Klane.t; tree : ttree }

and ttree = {
  piece : t;  (** E-node, P-node, or B-node *)
  children : ttree list;
  merged : Klane.t;  (** Tree-merge of the subtree rooted here *)
}

val klane_of : t -> Klane.t
(** The k-lane graph a node denotes. *)

val validate : t -> (unit, string) result
(** Recomputes every merge and checks every node-shape constraint. *)

val depth : t -> int
(** Maximum number of nodes on a root-to-leaf path (Obs 5.5: ≤ 2k). For
    this count, a T-node's children are its tree members and a B-node's
    children are its two parts. *)

val node_count : t -> int

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order over all hierarchy nodes (tree members of T-nodes included). *)

val edge_congestion : t -> int
(** Maximum number of hierarchy nodes whose k-lane graph contains a given
    underlying edge. *)

val max_lane : t -> int
(** Largest lane index anywhere in the hierarchy (so parameter k =
    [max_lane + 1] for 0-based lanes). *)

val pp_summary : Format.formatter -> t -> unit

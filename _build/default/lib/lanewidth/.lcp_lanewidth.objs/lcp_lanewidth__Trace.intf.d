lib/lanewidth/trace.mli: Format Lcp_graph Random

lib/lanewidth/hierarchy.mli: Format Klane

lib/lanewidth/prop52.ml: Array Hashtbl Lcp_graph Lcp_interval Lcp_lanes List Trace

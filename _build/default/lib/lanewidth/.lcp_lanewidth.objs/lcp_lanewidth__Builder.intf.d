lib/lanewidth/builder.mli: Hierarchy Lcp_graph Trace

lib/lanewidth/klane.ml: Format Hashtbl Lcp_graph List Printf String

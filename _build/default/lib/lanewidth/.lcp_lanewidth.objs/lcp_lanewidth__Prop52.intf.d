lib/lanewidth/prop52.mli: Lcp_interval Lcp_lanes Trace

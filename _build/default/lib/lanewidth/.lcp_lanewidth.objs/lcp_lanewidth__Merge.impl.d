lib/lanewidth/merge.ml: Klane Lcp_graph List Printf

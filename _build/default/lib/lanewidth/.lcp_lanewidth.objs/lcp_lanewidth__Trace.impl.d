lib/lanewidth/trace.ml: Array Format Hashtbl Lcp_graph List Printf Random

lib/lanewidth/klane.mli: Format Lcp_graph

lib/lanewidth/hierarchy.ml: Format Hashtbl Klane Lcp_graph List Merge Option Printf

lib/lanewidth/builder.ml: Array Hashtbl Hierarchy Klane Lcp_graph List Merge Option Trace

lib/lanewidth/merge.mli: Klane

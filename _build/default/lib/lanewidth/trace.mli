(** Lanewidth construction traces (Def 5.1).

    A graph has lanewidth ≤ k if it can be built from a k-vertex path
    [P = (τ₁, …, τ_k)] by a sequence of

    - [V_insert i]: add a fresh vertex [v] with an edge to the current i-th
      designated vertex and make [v] the new i-th designated vertex;
    - [E_insert (i, j)]: add an edge between the current i-th and j-th
      designated vertices.

    Vertex numbering: the initial path is [0 .. k-1] (so [τᵢ = i-1] in the
    paper's 1-based notation; lanes here are 0-based), and the vertex
    created by the x-th [V_insert] is [k + x - 1] counting only V-inserts. *)

type op = V_insert of int | E_insert of int * int

type t = { k : int; ops : op list }

val validate : t -> (unit, string) result
(** Checks lane indices are within range, [E_insert] lanes are distinct,
    and no operation duplicates an existing edge. *)

val eval : t -> Lcp_graph.Graph.t
(** Build the graph. Raises [Invalid_argument] if the trace is invalid. *)

val vertex_count : t -> int

val designated_history : t -> (int * int * int) list
(** Per vertex [v]: [(v, l_v, r_v)] — the time interval during which [v] is
    a designated vertex, as in the proof of Prop 5.2 (operations are times
    [1..X]; initial path vertices start at time 0). *)

val lane_assignment : t -> int array
(** The lane of each vertex: the index [i] such that the vertex was the
    i-th designated vertex when added. *)

val final_designated : t -> int array
(** The designated vertex of each lane after all operations. *)

val random : Random.State.t -> k:int -> ops:int -> t
(** A random valid trace (for property tests): each step is a V-insert or a
    non-duplicate E-insert. *)

val pp : Format.formatter -> t -> unit

(** The equivalence of Prop 5.2: a graph has lanewidth ≤ k iff it is the
    completion of some (G', I', P') with a k-lane partition P'.

    Both directions are constructive. Vertex numbering differs between the
    two worlds (traces number vertices by creation time), so each direction
    also returns the correspondence. *)

val completion_of_trace :
  Trace.t -> Lcp_interval.Representation.t * Lcp_lanes.Lane_partition.t
(** Item 1 ⇒ Item 2. Returns (I', P') over the graph G' formed by the
    E-insert edges, on the trace's own vertex numbering; the completion of
    the returned partition equals [Trace.eval]. Intervals are the
    designation time intervals. *)

val trace_of_partition : Lcp_lanes.Lane_partition.t -> Trace.t * int array
(** Item 2 ⇒ Item 1. [(trace, to_graph)] where [to_graph.(v)] maps a trace
    vertex to the corresponding graph vertex; relabeling [Trace.eval trace]
    along [to_graph] yields exactly the completion of the partition. *)

val check_roundtrip : Lcp_lanes.Lane_partition.t -> bool
(** [trace_of_partition] followed by relabeling reproduces the completion
    graph exactly. *)

(** k-lane graphs (Def 5.3), represented as subgraphs of a fixed host graph.

    A k-lane graph carries a non-empty set of lanes [T(G) ⊆ {0..k-1}] and,
    per lane, an in-terminal and an out-terminal (possibly equal). Both
    terminal maps are injective.

    Representing them as host subgraphs (vertex subset + edge subset of one
    ambient graph) makes Parent-merge's "identify τᵢⁱⁿ(G₁) with τᵢᵒᵘᵗ(G₂)"
    a set union, and matches how the certification uses the hierarchy: each
    node of a hierarchical decomposition is a connected subgraph of the
    final network. *)

type t = private {
  host : Lcp_graph.Graph.t;
  vertices : int list;  (** sorted *)
  edges : Lcp_graph.Graph.edge list;  (** sorted; all within [vertices] *)
  lane_in : (int * int) list;  (** lane ↦ in-terminal, sorted by lane *)
  lane_out : (int * int) list;  (** lane ↦ out-terminal, sorted by lane *)
}

val make :
  host:Lcp_graph.Graph.t ->
  vertices:int list ->
  edges:Lcp_graph.Graph.edge list ->
  lane_in:(int * int) list ->
  lane_out:(int * int) list ->
  t
(** Validates; raises [Invalid_argument] with a diagnostic. *)

val validate :
  host:Lcp_graph.Graph.t ->
  vertices:int list ->
  edges:Lcp_graph.Graph.edge list ->
  lane_in:(int * int) list ->
  lane_out:(int * int) list ->
  (unit, string) result

val singleton : host:Lcp_graph.Graph.t -> lane:int -> int -> t
(** A single-vertex k-lane graph (the V-node shape). *)

val single_edge :
  host:Lcp_graph.Graph.t -> lane:int -> t_in:int -> t_out:int -> t
(** A single-edge k-lane graph (the E-node shape); the edge must exist in
    the host and the terminals must differ. *)

val of_path : host:Lcp_graph.Graph.t -> int list -> t
(** The P-node shape: lane [i] has [τᵢⁱⁿ = τᵢᵒᵘᵗ] = the i-th path vertex;
    consecutive path vertices must be host edges. *)

val lanes : t -> int list
val tau_in : t -> int -> int
val tau_out : t -> int -> int
val tau_in_opt : t -> int -> int option
val tau_out_opt : t -> int -> int option
val mem_vertex : t -> int -> bool
val is_connected : t -> bool
(** Connected as a subgraph (using only [edges]). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

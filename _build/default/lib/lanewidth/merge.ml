module Graph = Lcp_graph.Graph

let disjoint l1 l2 = List.for_all (fun x -> not (List.mem x l2)) l1

let bridge_merge (g1 : Klane.t) (g2 : Klane.t) ~i ~j =
  if g1.Klane.host != g2.Klane.host then
    invalid_arg "Merge.bridge_merge: different hosts";
  if not (disjoint (Klane.lanes g1) (Klane.lanes g2)) then
    invalid_arg "Merge.bridge_merge: lane sets not disjoint";
  if not (disjoint g1.Klane.vertices g2.Klane.vertices) then
    invalid_arg "Merge.bridge_merge: vertex sets not disjoint";
  let a = Klane.tau_out g1 i and b = Klane.tau_out g2 j in
  if not (Graph.mem_edge g1.Klane.host a b) then
    invalid_arg "Merge.bridge_merge: bridge is not a host edge";
  Klane.make ~host:g1.Klane.host
    ~vertices:(g1.Klane.vertices @ g2.Klane.vertices)
    ~edges:(Graph.canonical_edge a b :: (g1.Klane.edges @ g2.Klane.edges))
    ~lane_in:(g1.Klane.lane_in @ g2.Klane.lane_in)
    ~lane_out:(g1.Klane.lane_out @ g2.Klane.lane_out)

let parent_merge ~(child : Klane.t) ~(parent : Klane.t) =
  if child.Klane.host != parent.Klane.host then
    invalid_arg "Merge.parent_merge: different hosts";
  let cl = Klane.lanes child and pl = Klane.lanes parent in
  if not (List.for_all (fun i -> List.mem i pl) cl) then
    invalid_arg "Merge.parent_merge: child lanes not a subset of parent lanes";
  let identified =
    List.map
      (fun i ->
        let tin = Klane.tau_in child i and tout = Klane.tau_out parent i in
        if tin <> tout then
          invalid_arg
            (Printf.sprintf
               "Merge.parent_merge: lane %d: child in-terminal %d is not the \
                parent out-terminal %d"
               i tin tout);
        tin)
      cl
  in
  let shared =
    List.filter (fun v -> List.mem v parent.Klane.vertices) child.Klane.vertices
  in
  if List.sort_uniq compare shared <> List.sort_uniq compare identified then
    invalid_arg
      "Merge.parent_merge: vertex sets overlap beyond the identified terminals";
  if not (disjoint child.Klane.edges parent.Klane.edges) then
    invalid_arg "Merge.parent_merge: edge sets not disjoint";
  let lane_out =
    List.map
      (fun i ->
        match Klane.tau_out_opt child i with
        | Some v -> (i, v)
        | None -> (i, Klane.tau_out parent i))
      pl
  in
  Klane.make ~host:parent.Klane.host
    ~vertices:(child.Klane.vertices @ parent.Klane.vertices)
    ~edges:(child.Klane.edges @ parent.Klane.edges)
    ~lane_in:parent.Klane.lane_in ~lane_out

type tree = { piece : Klane.t; children : tree list }

let validate_tree tree =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec go { piece; children } =
    let pl = Klane.lanes piece in
    let rec siblings = function
      | [] -> Ok ()
      | c :: rest ->
          if
            not
              (List.for_all (fun i -> List.mem i pl) (Klane.lanes c.piece))
          then err "child lanes not a subset of parent lanes"
          else if
            List.exists
              (fun c' -> not (disjoint (Klane.lanes c.piece) (Klane.lanes c'.piece)))
              rest
          then err "siblings share a lane"
          else siblings rest
    in
    match siblings children with
    | Error _ as e -> e
    | Ok () ->
        List.fold_left
          (fun acc c -> match acc with Error _ -> acc | Ok () -> go c)
          (Ok ()) children
  in
  go tree

let tree_merge tree =
  (match validate_tree tree with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Merge.tree_merge: " ^ msg));
  let rec merge { piece; children } =
    List.fold_left
      (fun acc c -> parent_merge ~child:(merge c) ~parent:acc)
      piece children
  in
  merge tree

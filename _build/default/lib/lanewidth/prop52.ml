module Graph = Lcp_graph.Graph
module Interval = Lcp_interval.Interval
module Representation = Lcp_interval.Representation
module Lane_partition = Lcp_lanes.Lane_partition
module Completion = Lcp_lanes.Completion

let completion_of_trace trace =
  let full = Trace.eval trace in
  let n = Graph.n full in
  let history = Trace.designated_history trace in
  let intervals = Array.make n (Interval.point 0) in
  List.iter (fun (v, l, r) -> intervals.(v) <- Interval.make l r) history;
  let lane = Trace.lane_assignment trace in
  (* G' = the E-insert edges: the trace edges minus the initial path and
     minus the V-insert edges. Recover them by re-simulating via eval of a
     V-insert-only trace and set difference. *)
  let skeleton =
    Trace.eval
      {
        trace with
        Trace.ops =
          List.filter
            (function Trace.V_insert _ -> true | Trace.E_insert _ -> false)
            trace.Trace.ops;
      }
  in
  let e_insert_edges =
    List.filter (fun (u, v) -> not (Graph.mem_edge skeleton u v)) (Graph.edges full)
  in
  let g' = Graph.of_edges ~n e_insert_edges in
  let rep = Representation.make g' intervals in
  (* lanes: per lane, vertices by creation order = by interval left end *)
  let lanes = Array.make trace.Trace.k [] in
  for v = n - 1 downto 0 do
    lanes.(lane.(v)) <- v :: lanes.(lane.(v))
  done;
  (rep, Lane_partition.make rep lanes)

let trace_of_partition p =
  let rep = Lane_partition.rep p in
  let g' = Representation.graph rep in
  let lanes = Lane_partition.lanes p in
  let k = Array.length lanes in
  let firsts = Lane_partition.first_vertices p in
  let first_set = Hashtbl.create k in
  List.iteri (fun i v -> Hashtbl.replace first_set v i) firsts;
  let lane = Array.make (Graph.n g') (-1) in
  Array.iteri (fun li l -> List.iter (fun v -> lane.(v) <- li) l) lanes;
  let left v = Interval.l (Representation.interval rep v) in
  (* items to process: non-first vertices (value L_v, kind 0) and the E'
     edges that are not initial-path edges (value min of the intersection,
     kind 1); vertices win ties *)
  let is_initial_path_edge (u, v) =
    match (Hashtbl.find_opt first_set u, Hashtbl.find_opt first_set v) with
    | Some a, Some b -> abs (a - b) = 1
    | _ -> false
  in
  let vertex_items =
    List.init (Graph.n g') (fun v -> v)
    |> List.filter (fun v -> not (Hashtbl.mem first_set v))
    |> List.map (fun v -> (left v, 0, `Vertex v))
  in
  let edge_items =
    Graph.edges g'
    |> List.filter (fun e -> not (is_initial_path_edge e))
    |> List.map (fun (u, v) -> (max (left u) (left v), 1, `Edge (u, v)))
  in
  let items = List.sort compare (vertex_items @ edge_items) in
  let ops = ref [] in
  let to_graph = ref (List.rev firsts) (* built reversed *) in
  List.iter
    (fun (_, _, item) ->
      match item with
      | `Vertex v ->
          ops := Trace.V_insert lane.(v) :: !ops;
          to_graph := v :: !to_graph
      | `Edge (u, v) -> ops := Trace.E_insert (lane.(u), lane.(v)) :: !ops)
    items;
  let trace = { Trace.k; ops = List.rev !ops } in
  (trace, Array.of_list (List.rev !to_graph))

let check_roundtrip p =
  let trace, to_graph = trace_of_partition p in
  match Trace.validate trace with
  | Error _ -> false
  | Ok () ->
      let built = Trace.eval trace in
      let relabeled = Graph.relabel built to_graph in
      Graph.equal relabeled (Completion.completion p)

(** The merging operations on k-lane graphs (§5.2–5.3).

    All operate on host-subgraph k-lane graphs over the same host, so
    "identifying" two terminals means they are the same host vertex. Each
    operation validates its preconditions and raises [Invalid_argument]
    with a diagnostic when violated — the runtime analogue of the paper's
    side conditions. *)

val bridge_merge : Klane.t -> Klane.t -> i:int -> j:int -> Klane.t
(** [bridge_merge g1 g2 ~i ~j]: requires disjoint lane sets and disjoint
    vertex sets, [i ∈ T(g1)], [j ∈ T(g2)], and the bridge
    [{τᵢᵒᵘᵗ(g1), τⱼᵒᵘᵗ(g2)}] to be a host edge. The result is the union
    plus the bridge; terminals are inherited. *)

val parent_merge : child:Klane.t -> parent:Klane.t -> Klane.t
(** [parent_merge ~child ~parent]: requires [T(child) ⊆ T(parent)], that
    for each lane [i ∈ T(child)] the host vertex [τᵢⁱⁿ(child)] equals
    [τᵢᵒᵘᵗ(parent)], that the vertex sets meet exactly at those identified
    terminals, and that the edge sets are disjoint. In-terminals come from
    the parent; out-terminals come from the child on its lanes. *)

type tree = { piece : Klane.t; children : tree list }

val validate_tree : tree -> (unit, string) result
(** The Tree-merge side conditions: every child's lanes are a subset of its
    parent's, and siblings have disjoint lane sets. *)

val tree_merge : tree -> Klane.t
(** Fold all Parent-merges of the tree (associative, §5.3). A single-vertex
    tree returns its piece. Raises if [validate_tree] fails or any
    Parent-merge precondition fails. *)

module Graph = Lcp_graph.Graph

type t = {
  host : Graph.t;
  vertices : int list;
  edges : Graph.edge list;
  lane_in : (int * int) list;
  lane_out : (int * int) list;
}

let validate ~host ~vertices ~edges ~lane_in ~lane_out =
  let vertices = List.sort_uniq compare vertices in
  let vset = Hashtbl.create (List.length vertices) in
  List.iter (fun v -> Hashtbl.replace vset v ()) vertices;
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_vertices = function
    | [] -> Ok ()
    | v :: rest ->
        if v < 0 || v >= Graph.n host then err "vertex %d not in host" v
        else check_vertices rest
  in
  let rec check_edges = function
    | [] -> Ok ()
    | (u, v) :: rest ->
        if not (Graph.mem_edge host u v) then err "edge %d-%d not in host" u v
        else if not (Hashtbl.mem vset u && Hashtbl.mem vset v) then
          err "edge %d-%d has an endpoint outside the vertex set" u v
        else check_edges rest
  in
  let injective pairs =
    let imgs = List.map snd pairs in
    List.length (List.sort_uniq compare imgs) = List.length imgs
  in
  let check_terminals name pairs =
    let rec go = function
      | [] -> Ok ()
      | (lane, v) :: rest ->
          if lane < 0 then err "%s: negative lane %d" name lane
          else if not (Hashtbl.mem vset v) then
            err "%s terminal %d of lane %d not in vertex set" name v lane
          else go rest
    in
    if not (injective pairs) then err "%s terminal map not injective" name
    else go pairs
  in
  let lanes_of pairs = List.sort compare (List.map fst pairs) in
  if vertices = [] then err "empty vertex set"
  else if lane_in = [] then err "empty lane set"
  else if lanes_of lane_in <> lanes_of lane_out then
    err "in and out terminal maps cover different lanes"
  else if
    List.length (List.sort_uniq compare (lanes_of lane_in))
    <> List.length lane_in
  then err "duplicate lane"
  else
    match check_vertices vertices with
    | Error _ as e -> e
    | Ok () -> (
        match check_edges edges with
        | Error _ as e -> e
        | Ok () -> (
            match check_terminals "in" lane_in with
            | Error _ as e -> e
            | Ok () -> check_terminals "out" lane_out))

let make ~host ~vertices ~edges ~lane_in ~lane_out =
  match validate ~host ~vertices ~edges ~lane_in ~lane_out with
  | Error msg -> invalid_arg ("Klane.make: " ^ msg)
  | Ok () ->
      {
        host;
        vertices = List.sort_uniq compare vertices;
        edges =
          List.sort_uniq compare
            (List.map (fun (u, v) -> Graph.canonical_edge u v) edges);
        lane_in = List.sort compare lane_in;
        lane_out = List.sort compare lane_out;
      }

let singleton ~host ~lane v =
  make ~host ~vertices:[ v ] ~edges:[] ~lane_in:[ (lane, v) ]
    ~lane_out:[ (lane, v) ]

let single_edge ~host ~lane ~t_in ~t_out =
  if t_in = t_out then invalid_arg "Klane.single_edge: equal terminals";
  make ~host ~vertices:[ t_in; t_out ]
    ~edges:[ Graph.canonical_edge t_in t_out ]
    ~lane_in:[ (lane, t_in) ]
    ~lane_out:[ (lane, t_out) ]

let of_path ~host vs =
  let rec path_edges = function
    | a :: (b :: _ as rest) -> Graph.canonical_edge a b :: path_edges rest
    | [] | [ _ ] -> []
  in
  let terminals = List.mapi (fun i v -> (i, v)) vs in
  make ~host ~vertices:vs ~edges:(path_edges vs) ~lane_in:terminals
    ~lane_out:terminals

let lanes t = List.map fst t.lane_in

let tau_in_opt t lane = List.assoc_opt lane t.lane_in
let tau_out_opt t lane = List.assoc_opt lane t.lane_out

let tau_in t lane =
  match tau_in_opt t lane with
  | Some v -> v
  | None -> invalid_arg "Klane.tau_in: lane not present"

let tau_out t lane =
  match tau_out_opt t lane with
  | Some v -> v
  | None -> invalid_arg "Klane.tau_out: lane not present"

let mem_vertex t v = List.mem v t.vertices

let is_connected t =
  match t.vertices with
  | [] -> false
  | first :: _ ->
      let uf = Lcp_graph.Union_find.create (Graph.n t.host) in
      List.iter (fun (u, v) -> ignore (Lcp_graph.Union_find.union uf u v)) t.edges;
      List.for_all (fun v -> Lcp_graph.Union_find.same uf first v) t.vertices

let equal a b =
  a.vertices = b.vertices && a.edges = b.edges && a.lane_in = b.lane_in
  && a.lane_out = b.lane_out

let pp ppf t =
  Format.fprintf ppf "@[<hov 2>klane(V={%s}; E={%s};@ in=%s; out=%s)@]"
    (String.concat "," (List.map string_of_int t.vertices))
    (String.concat ","
       (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) t.edges))
    (String.concat ","
       (List.map (fun (l, v) -> Printf.sprintf "%d:%d" l v) t.lane_in))
    (String.concat ","
       (List.map (fun (l, v) -> Printf.sprintf "%d:%d" l v) t.lane_out))

module Graph = Lcp_graph.Graph

type wnode = {
  id : int;
  mutable piece : Hierarchy.t;
  mutable children : wnode list;
  mutable parent : wnode option;
  depth : int;
}

let of_trace_on ~host ~to_host (trace : Trace.t) =
  let k = trace.Trace.k in
  let fresh_id =
    let c = ref 0 in
    fun () ->
      incr c;
      !c
  in
  (* current designated vertex per lane, in host ids *)
  let tau = Array.init k (fun i -> to_host.(i)) in
  let next_trace_vertex = ref k in
  let root =
    {
      id = fresh_id ();
      piece = Hierarchy.P_node (Klane.of_path ~host (Array.to_list tau));
      children = [];
      parent = None;
      depth = 0;
    }
  in
  (* deepest tree node containing the designated vertex of each lane *)
  let owner = Array.make k root in
  let add_child parent piece =
    let w =
      {
        id = fresh_id ();
        piece;
        children = [];
        parent = Some parent;
        depth = parent.depth + 1;
      }
    in
    parent.children <- w :: parent.children;
    w
  in
  let remove_child parent w =
    parent.children <- List.filter (fun c -> c.id <> w.id) parent.children
  in
  (* ancestor of [w] that is a direct child of [top] *)
  let rec child_toward ~top w =
    match w.parent with
    | Some p when p.id = top.id -> w
    | Some p -> child_toward ~top p
    | None -> invalid_arg "Builder: node is not below the expected ancestor"
  in
  let rec lca a b =
    if a.id = b.id then a
    else if a.depth > b.depth then lca (Option.get a.parent) b
    else if b.depth > a.depth then lca a (Option.get b.parent)
    else lca (Option.get a.parent) (Option.get b.parent)
  in
  (* condense a working subtree into a hierarchy ttree (computing merged
     k-lane graphs bottom-up) *)
  let rec to_ttree w =
    let children = List.map to_ttree (List.rev w.children) in
    let merged =
      List.fold_left
        (fun acc c ->
          Merge.parent_merge ~child:c.Hierarchy.merged ~parent:acc)
        (Hierarchy.klane_of w.piece) children
    in
    { Hierarchy.piece = w.piece; children; merged }
  in
  let subtree_ids w =
    let tbl = Hashtbl.create 16 in
    let rec go w =
      Hashtbl.replace tbl w.id ();
      List.iter go w.children
    in
    go w;
    tbl
  in
  let condense w =
    let tree = to_ttree w in
    Hierarchy.T_node { t_result = tree.Hierarchy.merged; tree }
  in
  (* after restructuring, lanes whose owner was condensed now live in the
     new node *)
  let reown removed_ids new_node =
    Array.iteri
      (fun a o -> if Hashtbl.mem removed_ids o.id then owner.(a) <- new_node)
      owner
  in
  List.iter
    (fun op ->
      match op with
      | Trace.V_insert i ->
          let v = to_host.(!next_trace_vertex) in
          incr next_trace_vertex;
          let enode =
            Hierarchy.E_node
              (Klane.single_edge ~host ~lane:i ~t_in:tau.(i) ~t_out:v)
          in
          let w = add_child owner.(i) enode in
          tau.(i) <- v;
          owner.(i) <- w
      | Trace.E_insert (i, j) ->
          let gi = owner.(i) and gj = owner.(j) in
          let g' = lca gi gj in
          let part ~lane g =
            (* the Bridge-merge operand on [lane]'s side *)
            if g.id = g'.id then
              (* V-node for the designated vertex *)
              ( Hierarchy.V_node (Klane.singleton ~host ~lane tau.(lane)),
                None )
            else begin
              let c = child_toward ~top:g' g in
              (condense c, Some c)
            end
          in
          let left, removed_i = part ~lane:i gi in
          let right, removed_j = part ~lane:j gj in
          let result =
            Merge.bridge_merge (Hierarchy.klane_of left)
              (Hierarchy.klane_of right) ~i ~j
          in
          let bnode = Hierarchy.B_node { result; left; right; i; j } in
          let removed = Hashtbl.create 16 in
          List.iter
            (fun r ->
              match r with
              | Some c ->
                  remove_child g' c;
                  Hashtbl.iter (fun id () -> Hashtbl.replace removed id ())
                    (subtree_ids c)
              | None -> ())
            [ removed_i; removed_j ];
          let w = add_child g' bnode in
          reown removed w;
          (* the designated vertices of lanes i and j are now inside the
             B-node in every case *)
          owner.(i) <- w;
          owner.(j) <- w)
    trace.Trace.ops;
  condense root

let of_trace trace =
  let host = Trace.eval trace in
  let to_host = Array.init (Graph.n host) (fun v -> v) in
  of_trace_on ~host ~to_host trace

module Graph = Lcp_graph.Graph

type op = V_insert of int | E_insert of int * int

type t = { k : int; ops : op list }

(* shared simulation: fold over operations with full state *)
type state = {
  tau : int array; (* designated vertex per lane *)
  mutable next_vertex : int;
  mutable edges : (int * int) list;
  mutable edge_set : (int * int, unit) Hashtbl.t;
}

let initial_state k =
  let edge_set = Hashtbl.create 64 in
  let edges = List.init (k - 1) (fun i -> (i, i + 1)) in
  List.iter (fun e -> Hashtbl.replace edge_set e ()) edges;
  {
    tau = Array.init k (fun i -> i);
    next_vertex = k;
    edges;
    edge_set;
  }

let simulate t ~on_op =
  if t.k < 1 then invalid_arg "Trace: need k >= 1";
  let st = initial_state t.k in
  let check_lane i =
    if i < 0 || i >= t.k then
      invalid_arg (Printf.sprintf "Trace: lane %d out of range" i)
  in
  List.iteri
    (fun x op ->
      let time = x + 1 in
      (match op with
      | V_insert i ->
          check_lane i;
          let v = st.next_vertex in
          st.next_vertex <- v + 1;
          let e = Graph.canonical_edge st.tau.(i) v in
          st.edges <- e :: st.edges;
          Hashtbl.replace st.edge_set e ();
          on_op time op st (Some v);
          st.tau.(i) <- v
      | E_insert (i, j) ->
          check_lane i;
          check_lane j;
          if i = j then invalid_arg "Trace: E_insert with equal lanes";
          let e = Graph.canonical_edge st.tau.(i) st.tau.(j) in
          if Hashtbl.mem st.edge_set e then
            invalid_arg
              (Printf.sprintf "Trace: E_insert duplicates edge %d-%d" (fst e)
                 (snd e));
          st.edges <- e :: st.edges;
          Hashtbl.replace st.edge_set e ();
          on_op time op st None))
    t.ops;
  st

let validate t =
  try
    let _ = simulate t ~on_op:(fun _ _ _ _ -> ()) in
    Ok ()
  with Invalid_argument msg -> Error msg

let vertex_count t =
  t.k
  + List.length (List.filter (function V_insert _ -> true | _ -> false) t.ops)

let eval t =
  let st = simulate t ~on_op:(fun _ _ _ _ -> ()) in
  Graph.of_edges ~n:st.next_vertex st.edges

let designated_history t =
  let n = vertex_count t in
  let l = Array.make n 0 and r = Array.make n (-1) in
  let x_total = List.length t.ops in
  let st =
    simulate t ~on_op:(fun time op state created ->
        match (op, created) with
        | V_insert i, Some v ->
            l.(v) <- time;
            (* the replaced vertex stops being designated *)
            r.(state.tau.(i)) <- time - 1
        | _ -> ())
  in
  Array.iter (fun v -> r.(v) <- x_total) st.tau;
  List.init n (fun v -> (v, l.(v), r.(v)))

let lane_assignment t =
  let n = vertex_count t in
  let lane = Array.make n (-1) in
  for i = 0 to t.k - 1 do
    lane.(i) <- i
  done;
  let _ =
    simulate t ~on_op:(fun _ op _ created ->
        match (op, created) with
        | V_insert i, Some v -> lane.(v) <- i
        | _ -> ())
  in
  lane

let final_designated t =
  let st = simulate t ~on_op:(fun _ _ _ _ -> ()) in
  Array.copy st.tau

let random rng ~k ~ops =
  let st = initial_state k in
  let out = ref [] in
  let attempts = ref 0 in
  while List.length !out < ops && !attempts < ops * 20 do
    incr attempts;
    if k = 1 || Random.State.bool rng then begin
      let i = Random.State.int rng k in
      let v = st.next_vertex in
      st.next_vertex <- v + 1;
      Hashtbl.replace st.edge_set (Graph.canonical_edge st.tau.(i) v) ();
      st.tau.(i) <- v;
      out := V_insert i :: !out
    end
    else begin
      let i = Random.State.int rng k in
      let j = Random.State.int rng k in
      if i <> j then begin
        let e = Graph.canonical_edge st.tau.(i) st.tau.(j) in
        if not (Hashtbl.mem st.edge_set e) then begin
          Hashtbl.replace st.edge_set e ();
          out := E_insert (i, j) :: !out
        end
      end
    end
  done;
  { k; ops = List.rev !out }

let pp ppf t =
  Format.fprintf ppf "k=%d:" t.k;
  List.iter
    (fun op ->
      match op with
      | V_insert i -> Format.fprintf ppf " V(%d)" i
      | E_insert (i, j) -> Format.fprintf ppf " E(%d,%d)" i j)
    t.ops

type writer = {
  mutable buf : Bytes.t;
  mutable len_bits : int;
}

let writer () = { buf = Bytes.make 16 '\000'; len_bits = 0 }

let ensure w needed_bits =
  let needed_bytes = (w.len_bits + needed_bits + 7) / 8 in
  if needed_bytes > Bytes.length w.buf then begin
    let cap = max needed_bytes (2 * Bytes.length w.buf) in
    let buf = Bytes.make cap '\000' in
    Bytes.blit w.buf 0 buf 0 (Bytes.length w.buf);
    w.buf <- buf
  end

let bit w b =
  ensure w 1;
  if b then begin
    let i = w.len_bits / 8 and off = w.len_bits mod 8 in
    Bytes.set w.buf i (Char.chr (Char.code (Bytes.get w.buf i) lor (1 lsl off)))
  end;
  w.len_bits <- w.len_bits + 1

let bits w ~width x =
  assert (width >= 0 && width <= 62);
  assert (x >= 0 && (width = 62 || x < 1 lsl width));
  for j = width - 1 downto 0 do
    bit w (x land (1 lsl j) <> 0)
  done

let rec varint w x =
  assert (x >= 0);
  if x < 128 then begin
    bit w false;
    bits w ~width:7 x
  end else begin
    bit w true;
    bits w ~width:7 (x land 0x7f);
    varint w (x lsr 7)
  end

let length_bits w = w.len_bits

let to_bytes w = Bytes.sub w.buf 0 ((w.len_bits + 7) / 8)

type reader = {
  data : Bytes.t;
  total_bits : int;
  mutable pos : int;
}

let reader data = { data; total_bits = 8 * Bytes.length data; pos = 0 }

let reader_of_writer w =
  { data = to_bytes w; total_bits = w.len_bits; pos = 0 }

let read_bit r =
  if r.pos >= r.total_bits then invalid_arg "Bitenc.read_bit: out of data";
  let i = r.pos / 8 and off = r.pos mod 8 in
  r.pos <- r.pos + 1;
  Char.code (Bytes.get r.data i) land (1 lsl off) <> 0

let read_bits r ~width =
  let rec go acc j =
    if j = 0 then acc
    else go ((acc lsl 1) lor (if read_bit r then 1 else 0)) (j - 1)
  in
  go 0 width

let read_varint r =
  let rec go acc shift =
    let continue_ = read_bit r in
    let group = read_bits r ~width:7 in
    let acc = acc lor (group lsl shift) in
    if continue_ then go acc (shift + 7) else acc
  in
  go 0 0

let bits_remaining r = r.total_bits - r.pos

let get_bit data pos =
  if pos < 0 || pos >= 8 * Bytes.length data then
    invalid_arg "Bitenc.get_bit: out of range";
  Char.code (Bytes.get data (pos / 8)) land (1 lsl (pos mod 8)) <> 0

let flip_bit data pos =
  if pos < 0 || pos >= 8 * Bytes.length data then
    invalid_arg "Bitenc.flip_bit: out of range";
  let i = pos / 8 in
  Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor (1 lsl (pos mod 8))))

let varint_size x =
  let rec go x acc = if x < 128 then acc + 8 else go (x lsr 7) (acc + 8) in
  go x 0

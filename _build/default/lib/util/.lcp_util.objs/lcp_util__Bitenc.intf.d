lib/util/bitenc.mli:

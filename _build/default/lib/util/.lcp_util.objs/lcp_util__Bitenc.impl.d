lib/util/bitenc.ml: Bytes Char

(** Configurations (§1.1): a connected network whose vertices carry
    O(log n)-bit distinct identifiers. Identifiers are part of the state,
    not of the proof — a cheating prover cannot alter them. *)

type t = private {
  graph : Lcp_graph.Graph.t;
  ids : int array;  (** distinct, non-negative *)
}

val make : ?ids:int array -> Lcp_graph.Graph.t -> t
(** Default ids are the vertex indices. Raises [Invalid_argument] on
    duplicate or negative ids. *)

val random_ids : Random.State.t -> ?bits:int -> Lcp_graph.Graph.t -> t
(** Distinct random ids drawn from [0, 2^bits) (default: enough bits for a
    comfortable O(log n) id space). *)

val graph : t -> Lcp_graph.Graph.t
val id : t -> int -> int
val vertex_of_id : t -> int -> int option
val n : t -> int

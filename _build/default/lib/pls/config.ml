module Graph = Lcp_graph.Graph

type t = {
  graph : Graph.t;
  ids : int array;
}

let make ?ids graph =
  let n = Graph.n graph in
  let ids =
    match ids with Some a -> Array.copy a | None -> Array.init n (fun v -> v)
  in
  if Array.length ids <> n then invalid_arg "Config.make: wrong id count";
  Array.iter (fun x -> if x < 0 then invalid_arg "Config.make: negative id") ids;
  let sorted = Array.copy ids in
  Array.sort compare sorted;
  for i = 0 to n - 2 do
    if sorted.(i) = sorted.(i + 1) then invalid_arg "Config.make: duplicate ids"
  done;
  { graph; ids }

let random_ids rng ?bits graph =
  let n = Graph.n graph in
  let bits =
    match bits with
    | Some b -> b
    | None ->
        let rec need b = if 1 lsl b >= 4 * max n 2 then b else need (b + 1) in
        need 2
  in
  let space = 1 lsl bits in
  if space < n then invalid_arg "Config.random_ids: id space too small";
  let seen = Hashtbl.create n in
  let ids =
    Array.init n (fun _ ->
        let rec draw () =
          let x = Random.State.int rng space in
          if Hashtbl.mem seen x then draw ()
          else begin
            Hashtbl.replace seen x ();
            x
          end
        in
        draw ())
  in
  make ~ids graph

let graph t = t.graph
let id t v = t.ids.(v)

let vertex_of_id t x =
  let found = ref None in
  Array.iteri (fun v y -> if y = x then found := Some v) t.ids;
  !found

let n t = Graph.n t.graph

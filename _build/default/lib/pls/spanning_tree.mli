(** The pointer scheme of Prop 2.2: certify, with O(log n)-bit edge labels,
    that a vertex with a given identifier [x] exists ("pointing to v").

    The label of a tree edge is [(x, d, c)] where [d ≥ 1] is the distance
    from the root of a BFS spanning tree to the child endpoint and [c] is
    the child's identifier; non-tree edges carry [(x, ⊥)]. Every non-root
    vertex checks it has exactly one parent edge (a tree label carrying its
    own id), that its children's edges claim distance exactly one more than
    its own, and that all labels agree on [x]; the root (id [x]) checks it
    has no parent edge. Any accepted labeling yields strictly decreasing
    parent chains that can only terminate at a vertex with identifier [x],
    so the scheme is sound. *)

type label = {
  target : int;  (** the id x being pointed to *)
  parent : (int * int) option;  (** (distance of child endpoint, child id) *)
}

val scheme : target:int -> label Scheme.edge_scheme
(** The prover declines if no vertex has id [target] or the graph is
    disconnected. *)

val labels_for :
  Config.t -> root:int -> target:int -> label Scheme.Edge_map.t
(** The honest labeling with the BFS tree rooted at vertex [root] (which
    must have id [target]) — exposed so that composite schemes can embed
    pointer sub-labels. *)

val verify : ?target:int -> label Scheme.edge_view -> (unit, string) result
(** The local verifier, exposed for embedding into composite schemes. *)

val encode : Lcp_util.Bitenc.writer -> label -> unit

val decode : Lcp_util.Bitenc.reader -> label
(** Inverse of {!encode} — the codec bit-level fault injection round-trips
    labels through. *)

module Graph = Lcp_graph.Graph
module Traversal = Lcp_graph.Traversal
module Bitenc = Lcp_util.Bitenc

type input = { in_f : bool }

type label = {
  root : int;
  tree : (int * int * int) option;
}

let labels_for cfg ~f =
  let g = Config.graph cfg in
  let n = Graph.n g in
  let fset = Hashtbl.create 16 in
  List.iter
    (fun (u, v) -> Hashtbl.replace fset (Graph.canonical_edge u v) ())
    f;
  let forest = Graph.of_edges ~n (Hashtbl.fold (fun e () l -> e :: l) fset []) in
  if not (Traversal.is_tree forest) then None
  else begin
    let root = ref 0 in
    for v = 1 to n - 1 do
      if Config.id cfg v < Config.id cfg !root then root := v
    done;
    let root = !root in
    let parent = Traversal.bfs_tree forest root in
    let dist = Traversal.bfs_from forest root in
    let labels =
      Graph.fold_edges
        (fun (u, v) m ->
          let marked = Hashtbl.mem fset (u, v) in
          let lab =
            if not marked then { root = Config.id cfg root; tree = None }
            else if parent.(u) = v then
              {
                root = Config.id cfg root;
                tree = Some (Config.id cfg u, Config.id cfg v, dist.(u));
              }
            else
              {
                root = Config.id cfg root;
                tree = Some (Config.id cfg v, Config.id cfg u, dist.(v));
              }
          in
          Scheme.Edge_map.add m (u, v) ({ in_f = marked }, lab))
        g Scheme.Edge_map.empty
    in
    Some labels
  end

let prove_for cfg ~f = labels_for cfg ~f

let verify (view : (input * label) Scheme.edge_view) =
  let m = view.Scheme.ev_id in
  match view.Scheme.ev_labels with
  | [] -> Ok () (* a single-vertex network: the empty F is its spanning tree *)
  | (_, first) :: _ ->
      let r = first.root in
      let check_label (inp, l) =
        if l.root <> r then Error "stree: inconsistent root id"
        else
          match (inp.in_f, l.tree) with
          | false, None -> Ok ()
          | false, Some _ -> Error "stree: proof on an unmarked edge"
          | true, None -> Error "stree: marked edge without tree data"
          | true, Some (c, p, d) ->
              if c = p then Error "stree: degenerate tree edge"
              else if d < 1 then Error "stree: non-positive distance"
              else if m <> c && m <> p then
                Error "stree: marked edge does not name me"
              else Ok ()
      in
      let rec check_all = function
        | [] -> Ok ()
        | x :: rest -> (
            match check_label x with Ok () -> check_all rest | e -> e)
      in
      (match check_all view.ev_labels with
      | Error _ as e -> e
      | Ok () ->
          let parents =
            List.filter_map
              (fun ((inp : input), l) ->
                match l.tree with
                | Some (c, _, d) when inp.in_f && c = m -> Some d
                | _ -> None)
              view.ev_labels
          in
          let children =
            List.filter_map
              (fun ((inp : input), l) ->
                match l.tree with
                | Some (c, p, d) when inp.in_f && p = m && c <> m -> Some d
                | _ -> None)
              view.ev_labels
          in
          let my_dist =
            if m = r then
              match parents with [] -> Ok 0 | _ -> Error "stree: root has a parent"
            else
              match parents with
              | [ d ] -> Ok d
              | [] -> Error "stree: no parent edge"
              | _ -> Error "stree: multiple parent edges"
          in
          (match my_dist with
          | Error _ as e -> e
          | Ok d ->
              if List.for_all (fun d' -> d' = d + 1) children then Ok ()
              else Error "stree: child at wrong distance"))

let scheme =
  let prove cfg =
    let g = Config.graph cfg in
    if not (Traversal.is_connected g) || Graph.n g = 0 then None
    else labels_for cfg ~f:(Traversal.spanning_tree g ~root:0)
  in
  let encode w ((inp : input), l) =
    Bitenc.bit w inp.in_f;
    Bitenc.varint w l.root;
    match l.tree with
    | None -> Bitenc.bit w false
    | Some (c, p, d) ->
        Bitenc.bit w true;
        Bitenc.varint w c;
        Bitenc.varint w p;
        Bitenc.varint w d
  in
  {
    Scheme.es_name = "spanning_tree_input";
    es_prove = prove;
    es_verify = verify;
    es_encode = encode;
  }

let corrupt_marking labels e =
  match Scheme.Edge_map.find labels e with
  | None -> labels
  | Some ((inp : input), l) ->
      Scheme.Edge_map.add labels e ({ in_f = not inp.in_f }, l)

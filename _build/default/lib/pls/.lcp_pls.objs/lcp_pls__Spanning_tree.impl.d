lib/pls/spanning_tree.ml: Array Config Lcp_graph Lcp_util List Scheme

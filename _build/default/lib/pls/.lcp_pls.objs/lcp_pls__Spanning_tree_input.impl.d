lib/pls/spanning_tree_input.ml: Array Config Hashtbl Lcp_graph Lcp_util List Scheme

lib/pls/fault.mli: Config Lcp_util Random Scheme

lib/pls/bipartite_scheme.ml: Array Config Lcp_graph Lcp_util List Queue Scheme

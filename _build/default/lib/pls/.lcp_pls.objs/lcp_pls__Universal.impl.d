lib/pls/universal.ml: Array Config Hashtbl Lcp_graph Lcp_util List Scheme

lib/pls/network.ml: Array Config Lcp_graph List Option Scheme

lib/pls/config.ml: Array Hashtbl Lcp_graph Random

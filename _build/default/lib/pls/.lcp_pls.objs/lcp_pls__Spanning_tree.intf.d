lib/pls/spanning_tree.mli: Config Lcp_util Scheme

lib/pls/spanning_tree.mli: Config Scheme

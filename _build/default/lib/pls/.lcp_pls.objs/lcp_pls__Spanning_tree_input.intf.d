lib/pls/spanning_tree_input.mli: Config Lcp_graph Scheme

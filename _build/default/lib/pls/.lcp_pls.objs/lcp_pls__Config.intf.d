lib/pls/config.mli: Lcp_graph Random

lib/pls/network.mli: Config Scheme

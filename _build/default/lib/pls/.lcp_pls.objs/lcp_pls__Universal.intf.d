lib/pls/universal.mli: Lcp_graph Scheme

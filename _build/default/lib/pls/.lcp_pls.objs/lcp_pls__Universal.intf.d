lib/pls/universal.mli: Lcp_graph Lcp_util Scheme

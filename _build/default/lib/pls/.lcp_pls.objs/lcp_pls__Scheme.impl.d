lib/pls/scheme.ml: Array Config Lcp_graph Lcp_util List Map

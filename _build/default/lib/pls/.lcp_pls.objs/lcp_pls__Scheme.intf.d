lib/pls/scheme.mli: Config Lcp_graph Lcp_util

lib/pls/fault.ml: Array Config Fun Lcp_graph Lcp_util List Network Option Printf Random Scheme

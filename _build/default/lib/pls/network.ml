module Graph = Lcp_graph.Graph

type verdict = Accept | Reject of string

type 'l transcript = {
  rounds : int;
  messages : (int * int * 'l) list;
  verdicts : (int * verdict) list;
}

let accepted t =
  List.for_all (fun (_, v) -> match v with Accept -> true | Reject _ -> false)
    t.verdicts

let run_vertex_round cfg (scheme : 'l Scheme.vertex_scheme) labels =
  let g = Config.graph cfg in
  if Array.length labels <> Graph.n g then
    invalid_arg "Network.run_vertex_round: wrong label count";
  (* round 1: every processor sends (id, label) over every incident link *)
  let messages =
    Graph.fold_vertices
      (fun u acc ->
        List.fold_left
          (fun acc v -> (u, v, (Config.id cfg u, labels.(u))) :: acc)
          acc (Graph.neighbors g u))
      g []
    |> List.rev
  in
  (* mailboxes *)
  let mailbox = Array.make (Graph.n g) [] in
  List.iter
    (fun (_, receiver, payload) ->
      mailbox.(receiver) <- payload :: mailbox.(receiver))
    messages;
  let verdicts =
    Graph.fold_vertices
      (fun v acc ->
        let view =
          {
            Scheme.vv_id = Config.id cfg v;
            vv_label = labels.(v);
            vv_neighbors = List.rev mailbox.(v);
          }
        in
        let verdict =
          match scheme.Scheme.vs_verify view with
          | Ok () -> Accept
          | Error m -> Reject m
        in
        (v, verdict) :: acc)
      g []
    |> List.rev
  in
  { rounds = 1; messages; verdicts }

let run_edge_round cfg (scheme : 'l Scheme.edge_scheme) labels =
  let g = Config.graph cfg in
  (* each link delivers its label to both endpoints *)
  let messages =
    Graph.fold_edges
      (fun (u, v) acc ->
        match Scheme.Edge_map.find labels (u, v) with
        | Some l -> (u, v, l) :: (v, u, l) :: acc
        | None ->
            invalid_arg
              (Printf.sprintf "Network.run_edge_round: edge %d-%d unlabeled" u v))
      g []
    |> List.rev
  in
  let mailbox = Array.make (Graph.n g) [] in
  List.iter
    (fun (_, receiver, l) -> mailbox.(receiver) <- l :: mailbox.(receiver))
    messages;
  let verdicts =
    Graph.fold_vertices
      (fun v acc ->
        let view =
          {
            Scheme.ev_id = Config.id cfg v;
            ev_degree = Graph.degree g v;
            ev_labels = List.rev mailbox.(v);
          }
        in
        let verdict =
          match scheme.Scheme.es_verify view with
          | Ok () -> Accept
          | Error m -> Reject m
        in
        (v, verdict) :: acc)
      g []
    |> List.rev
  in
  { rounds = 1; messages; verdicts }

type 'l stabilization_report = {
  faults_injected : int;
  faults_detected : int;
  reproofs : int;
  final_legal : bool;
}

let stabilize cfg (scheme : 'l Scheme.edge_scheme) ~faults =
  let prove () =
    match scheme.Scheme.es_prove cfg with
    | Some labels -> labels
    | None -> invalid_arg "Network.stabilize: prover declined"
  in
  let legal labels = accepted (run_edge_round cfg scheme labels) in
  let labels = ref (prove ()) in
  if not (legal !labels) then
    invalid_arg "Network.stabilize: honest certificate rejected";
  let detected = ref 0 and reproofs = ref 0 in
  List.iter
    (fun fault ->
      let corrupted = fault !labels in
      if legal corrupted then
        (* the fault produced an equivalent legal state; adopt it *)
        labels := corrupted
      else begin
        incr detected;
        incr reproofs;
        labels := prove ()
      end)
    faults;
  {
    faults_injected = List.length faults;
    faults_detected = !detected;
    reproofs = !reproofs;
    final_legal = legal !labels;
  }

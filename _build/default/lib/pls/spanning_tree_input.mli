(** The original proof labeling scheme problem (§1.5, [KKP10]): the
    network's state includes a set F of marked edges, and the scheme
    certifies that F is a spanning tree of the network.

    This is a configuration *with inputs*: the predicate depends on the
    state (the marking), not just the topology. Labels are on edges; each
    edge's input bit [in_f] is part of the state — visible to both
    endpoints and not falsifiable by the prover.

    Construction: the prover roots F at the vertex with the smallest
    identifier and labels every F-edge with (root id, child id, parent id,
    child distance). Every vertex checks that each marked incident edge
    names it as child or parent, that it has exactly one F-parent (none if
    it is the root), that its F-children sit at distance exactly one more
    than its own, and that all labels agree on the root. Accepting
    everywhere forces every marked edge to be exactly one vertex's parent
    edge on a strictly-decreasing distance chain to the root, so (V, F) is
    connected with each non-root having one parent — a spanning tree. *)

type input = { in_f : bool }
(** The per-edge state: whether the edge is marked. *)

type label = {
  root : int;
  tree : (int * int * int) option;
      (** on F-edges: (child id, parent id, child distance ≥ 1) *)
}

val scheme : (input * label) Scheme.edge_scheme
(** The edge labels carry the input alongside the proof so the standard
    harness can deliver both; the verifier treats [in_f] as state and
    [label] as the untrusted proof. The prover marks a BFS spanning tree
    itself when proving from a bare configuration. *)

val prove_for :
  Config.t -> f:Lcp_graph.Graph.edge list -> (input * label) Scheme.Edge_map.t option
(** Certify a GIVEN marking F; returns [None] when F is not a spanning
    tree of the configuration's graph (completeness side). *)

val corrupt_marking :
  (input * label) Scheme.Edge_map.t ->
  Lcp_graph.Graph.edge ->
  (input * label) Scheme.Edge_map.t
(** Flip the marking of one edge — a state fault, used by tests to check
    that no proof can cover a broken marking. *)

(** An explicit round-based message-passing simulation of proof labeling
    scheme verification (§1.1).

    The {!Scheme} harness evaluates verifiers directly; this module spells
    the distributed semantics out: processors hold local memory (their
    state and, for edge schemes, the labels of their incident edges — in a
    real deployment each link's label is readable by both endpoints), a
    single synchronous round delivers every label across every link, and
    each processor then decides from its mailbox alone.

    Every round runner takes two faulty-world knobs used by the
    fault-injection subsystem ({!Fault}): [silent] lists crashed or
    Byzantine processors, whose verdict is forced to [Accept] (a dead or
    lying processor raises no alarm — detection must come from its
    neighbors); [id_of] overrides the identifier a processor presents,
    modeling ID-collision faults. Whether a processor {e sends} is
    governed by its label memory, not by silence: a crashed processor
    lost its label and sends nothing, while a Byzantine one sends its
    corrupted label. In the synchronous model a missing message is
    observable, so a processor that receives fewer messages than its
    degree rejects with {!Scheme.missing_label}. Omitting both knobs
    gives the honest semantics.

    The module also provides the self-stabilization driver the
    introduction motivates: run detection after every fault, and repair —
    locally when possible — when a processor raises an alarm. *)

type verdict = Accept | Reject of string

type 'l transcript = {
  rounds : int;  (** always 1 for proof labeling schemes *)
  messages : (int * int * 'l) list;
      (** (sender vertex, receiver vertex, payload) of every delivered
          message, in delivery order — the full communication record *)
  verdicts : (int * verdict) list;  (** per vertex *)
}

val accepted : 'l transcript -> bool

val rejectors : 'l transcript -> int list
(** The vertices that rejected — the detected region. *)

val run_vertex_round :
  ?silent:int list ->
  ?id_of:(int -> int) ->
  Config.t ->
  'l Scheme.vertex_scheme ->
  'l array ->
  (int * 'l) transcript
(** One synchronous round: every processor sends (its id, its label) over
    every incident link; each then runs the scheme's verifier on its
    mailbox. The honest verdicts coincide with {!Scheme.run_vertex}
    (tested). *)

val run_vertex_partial :
  ?silent:int list ->
  ?id_of:(int -> int) ->
  Config.t ->
  'l Scheme.vertex_scheme ->
  'l option array ->
  (int * 'l) transcript
(** Like {!run_vertex_round} on a partially labeled network: a processor
    whose label was erased sends nothing and (unless silent) rejects with
    {!Scheme.missing_label}; its non-silent neighbors notice the missing
    message and reject likewise. *)

val run_edge_round :
  ?silent:int list ->
  ?id_of:(int -> int) ->
  Config.t ->
  'l Scheme.edge_scheme ->
  'l Scheme.Edge_map.t ->
  'l transcript
(** Edge-label semantics: each labeled link delivers its label to both
    endpoints (modeled as a message from the opposite endpoint); each
    processor decides from its own id and the received multiset, exactly
    the paper's local view. A link whose label was deleted delivers
    nothing and both its (non-silent) endpoints reject with
    {!Scheme.missing_label}. Honest verdicts coincide with
    {!Scheme.run_edge} (tested). *)

val patch_region :
  Config.t ->
  fresh:'l Scheme.Edge_map.t ->
  current:'l Scheme.Edge_map.t ->
  region:int list ->
  'l Scheme.Edge_map.t
(** Localized recovery step: relabel every edge incident to [region] from
    the [fresh] proof and keep [current] elsewhere. The result is total
    whenever [fresh] is total and [current] is total outside the region. *)

(** {1 Self-stabilization driver} *)

type stabilization_report = {
  faults_injected : int;
  no_op : int;
      (** faults that left the label map unchanged — nothing observable
          happened, so nothing may be detected *)
  legal_rewrites : int;
      (** faults that produced a *different but legal* certificate: every
          processor accepts, so a self-stabilizing system must adopt the
          new state silently. Campaigns that consider such a fault
          semantically harmful must catch it here — by the scheme's
          soundness it is indistinguishable from a legal state. *)
  detected : int;
      (** faults after which at least one processor rejected — the alarm
          that triggers recovery *)
  localized_recoveries : int;
      (** detected faults repaired by relabeling only the rejecting
          region's incident edges ({!patch_region}) *)
  global_reproofs : int;
      (** detected faults where the localized patch still rejected (or
          [localize] was off) and the whole proof was reinstalled *)
  recovery_rounds : int;
      (** total extra verification rounds spent confirming repairs *)
  max_detection_latency : int;
      (** worst number of rounds from injection to first rejection; 1 for
          every detected fault in the synchronous model (0 when nothing
          was detected) *)
  final_legal : bool;
}

val stabilize :
  ?localize:bool ->
  Config.t ->
  'l Scheme.edge_scheme ->
  faults:('l Scheme.Edge_map.t -> 'l Scheme.Edge_map.t) list ->
  stabilization_report
(** Install an honest certificate, then apply each fault in turn and run
    detection. Faults are classified three ways (see the report fields):
    [no_op] (state unchanged), [legal_rewrite] (changed but accepted —
    adopted), [detected] (some processor rejects). A detected fault is
    repaired by re-running the prover (the "manager" of a self-stabilizing
    system) and — when [localize] is [true], the default — first splicing
    the fresh labels onto the rejecting region only, falling back to a
    global reinstall if the patch does not verify. The prover must succeed
    on the configuration. *)

(** An explicit round-based message-passing simulation of proof labeling
    scheme verification (§1.1).

    The {!Scheme} harness evaluates verifiers directly; this module spells
    the distributed semantics out: processors hold local memory (their
    state and, for edge schemes, the labels of their incident edges — in a
    real deployment each link's label is readable by both endpoints), a
    single synchronous round delivers every label across every link, and
    each processor then decides from its mailbox alone.

    The module also provides the self-stabilization driver the
    introduction motivates: run detection after every fault, and re-prove
    when a legal state must be restored. *)

type verdict = Accept | Reject of string

type 'l transcript = {
  rounds : int;  (** always 1 for proof labeling schemes *)
  messages : (int * int * 'l) list;
      (** (sender vertex, receiver vertex, payload) of every delivered
          message, in delivery order — the full communication record *)
  verdicts : (int * verdict) list;  (** per vertex *)
}

val accepted : 'l transcript -> bool

val run_vertex_round :
  Config.t -> 'l Scheme.vertex_scheme -> 'l array -> (int * 'l) transcript
(** One synchronous round: every processor sends (its id, its label) over
    every incident link; each then runs the scheme's verifier on its
    mailbox. The verdicts coincide with {!Scheme.run_vertex} (tested). *)

val run_edge_round :
  Config.t -> 'l Scheme.edge_scheme -> 'l Scheme.Edge_map.t -> 'l transcript
(** Edge-label semantics: each link delivers its label to both endpoints
    (modeled as a message from the opposite endpoint); each processor
    decides from its own id and the received multiset, exactly the paper's
    local view. Coincides with {!Scheme.run_edge} (tested). *)

(** {1 Self-stabilization driver} *)

type 'l stabilization_report = {
  faults_injected : int;
  faults_detected : int;
  reproofs : int;
  final_legal : bool;
}

val stabilize :
  Config.t ->
  'l Scheme.edge_scheme ->
  faults:('l Scheme.Edge_map.t -> 'l Scheme.Edge_map.t) list ->
  'l stabilization_report
(** Install an honest certificate, then apply each fault in turn: run
    detection; when some processor rejects, re-run the prover (the
    "manager" of a self-stabilizing system) to restore a legal state.
    Returns what happened. The prover must succeed on the configuration. *)

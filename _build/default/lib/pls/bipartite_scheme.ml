(** The introductory 1-bit scheme (§1.1): certify bipartiteness by giving
    each vertex its side of a proper 2-coloring; every vertex checks that
    all its neighbors carry the opposite bit. *)

module Graph = Lcp_graph.Graph
module Bitenc = Lcp_util.Bitenc

let prove cfg =
  let g = Config.graph cfg in
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let ok = ref true in
  for s = 0 to n - 1 do
    if color.(s) < 0 then begin
      color.(s) <- 0;
      let q = Queue.create () in
      Queue.push s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        List.iter
          (fun v ->
            if color.(v) < 0 then begin
              color.(v) <- 1 - color.(u);
              Queue.push v q
            end
            else if color.(v) = color.(u) then ok := false)
          (Graph.neighbors g u)
      done
    end
  done;
  if !ok then Some (Array.map (fun c -> c = 1) color) else None

let verify (view : bool Scheme.vertex_view) =
  if List.for_all (fun (_, c) -> c <> view.vv_label) view.vv_neighbors then
    Ok ()
  else Error "bipartite: a neighbor has my color"

let encode w b = Bitenc.bit w b
let decode r = Bitenc.read_bit r

let scheme =
  {
    Scheme.vs_name = "bipartite_1bit";
    vs_prove = prove;
    vs_verify = verify;
    vs_encode = encode;
  }

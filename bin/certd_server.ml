(* The persistent certification daemon: listen on a unix-domain socket,
   keep a supervised pool of long-lived workers, answer certd --connect
   clients. The protocol, admission control, and supervision live in
   Lcp_service.Server; this binary only parses flags and builds the
   per-worker engine factory.

   Examples:
     certd_server.exe --socket /tmp/certd.sock --workers 4 \
       --cache-dir /tmp/certs --base-dir examples/service
     certd_server.exe --socket /tmp/certd.sock --faults 'torn@9:8' \
       --timed           # storage-fault drill with stage percentiles

   The daemon runs until SIGTERM/SIGINT or a client's shutdown request,
   drains its queue through the workers, and exits 0. Exit code 2 is a
   usage error (bad flag, socket already served).

   --journal-dir DIR makes every served delta-session reply durable: a
   checksummed append-only journal that a restarted daemon replays to
   rebuild its sessions, so a crashed stream resumes instead of
   restarting. --supervise keeps the daemon itself alive: the real
   server runs as a child, and the supervisor respawns it with bounded
   backoff when it dies abnormally (a crash loop — five sub-second
   lives in a row — gives up instead of spinning). *)

module Service = Lcp_service

(* Run [serve] as a supervised child: respawn on abnormal death with
   exponential backoff (0.1 s doubling, capped at 2 s). Exit 0 (clean
   shutdown) and exit 2 (usage error / lock holder — respawning cannot
   help) pass through; anything else — nonzero exits, signals,
   SIGKILL — respawns. SIGTERM/SIGINT are forwarded to the child so
   "kill the supervisor" still drains the daemon cleanly. *)
let supervise serve =
  let child = ref 0 in
  let forward signal =
    Sys.set_signal signal
      (Sys.Signal_handle
         (fun s ->
           if !child > 0 then
             try Unix.kill !child s with Unix.Unix_error _ -> ()))
  in
  forward Sys.sigterm;
  forward Sys.sigint;
  let backoff = ref 0.1 in
  let fast_deaths = ref 0 in
  let rec loop () =
    (* the child inherits buffered output; flush so log lines are not
       emitted twice *)
    flush stdout;
    flush stderr;
    let born = Unix.gettimeofday () in
    (match Unix.fork () with
    | 0 -> serve ()
    | pid -> child := pid);
    let rec wait () =
      match Unix.waitpid [] !child with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      | _, status -> status
    in
    let status = wait () in
    child := 0;
    let lived = Unix.gettimeofday () -. born in
    if lived >= 1.0 then begin
      fast_deaths := 0;
      backoff := 0.1
    end
    else incr fast_deaths;
    match status with
    | Unix.WEXITED 0 -> exit 0
    | Unix.WEXITED 2 -> exit 2
    | Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
        if !fast_deaths >= 5 then begin
          prerr_endline
            "certd-server: crash loop (5 consecutive sub-second lives); \
             giving up";
          exit 1
        end;
        (* waitpid reports signals in OCaml's portable numbering, which
           is not the OS number — name the common ones instead of
           printing a baffling negative integer *)
        let signal_name s =
          if s = Sys.sigkill then "SIGKILL"
          else if s = Sys.sigterm then "SIGTERM"
          else if s = Sys.sigint then "SIGINT"
          else if s = Sys.sigsegv then "SIGSEGV"
          else if s = Sys.sigabrt then "SIGABRT"
          else Printf.sprintf "signal %d" s
        in
        Printf.eprintf "certd-server: child died (%s); respawning in %.1fs\n%!"
          (match status with
          | Unix.WEXITED n -> Printf.sprintf "exit %d" n
          | Unix.WSIGNALED s -> signal_name s
          | Unix.WSTOPPED s -> Printf.sprintf "stopped %s" (signal_name s))
          !backoff;
        Unix.sleepf !backoff;
        backoff := Float.min 2.0 (!backoff *. 2.0);
        loop ()
  in
  loop ()

let run socket workers queue_cap client_cap cache_cap cache_dir disk_cap
    degrade_after deadline_ms faults base_dir timed quiet journal_dir fsync
    checkpoint_every supervise_flag write_batch =
  if workers < 1 then begin
    prerr_endline "certd-server: --workers must be >= 1";
    exit 2
  end;
  if write_batch < 1 then begin
    prerr_endline "certd-server: --write-batch must be >= 1";
    exit 2
  end;
  if queue_cap < 1 then begin
    prerr_endline "certd-server: --queue-cap must be >= 1";
    exit 2
  end;
  let client_cap =
    match client_cap with
    | 0 -> Service.Server.default_client_cap queue_cap
    | n when n >= 1 -> n
    | _ ->
        prerr_endline "certd-server: --client-cap must be >= 1";
        exit 2
  in
  let plan =
    match faults with
    | None -> None
    | Some plan_str -> (
        match Service.Blob_io.parse_plan plan_str with
        | Error e ->
            Printf.eprintf "certd-server: --faults: %s\n" e;
            exit 2
        | Ok plan -> Some plan)
  in
  let retry =
    if deadline_ms > 0.0 then
      { Service.Engine.default_retry with deadline_ms }
    else Service.Engine.default_retry
  in
  (* built once inside each worker process, after the fork: private
     memory tier and fault-plan counters per worker, shared disk tier *)
  let make_engine ~worker:_ timing =
    let io =
      Option.map
        (fun plan -> fst (Service.Blob_io.inject ~plan Service.Blob_io.real))
        plan
    in
    Service.Engine.create ~cache_cap ?cache_dir ~cache_disk_cap:disk_cap
      ~degrade_after ~write_batch ?io ~retry ~base_dir ?timing ()
  in
  let journal_fsync =
    match Service.Journal.fsync_policy_of_string fsync with
    | Some p -> p
    | None ->
        Printf.eprintf
          "certd-server: --fsync: %S is not a policy (always, never, every=N)\n"
          fsync;
        exit 2
  in
  if checkpoint_every < 1 then begin
    prerr_endline "certd-server: --checkpoint-every must be >= 1";
    exit 2
  end;
  let serve () =
    match
      Service.Server.run
        {
          Service.Server.socket_path = socket;
          workers;
          queue_cap;
          client_cap;
          make_engine;
          timed;
          verbose = not quiet;
          journal_dir;
          journal_fsync;
          journal_checkpoint = checkpoint_every;
        }
    with
    | () -> exit 0
    | exception Sys_error e ->
        Printf.eprintf "certd-server: %s\n" e;
        exit 2
  in
  if supervise_flag then supervise serve else serve ()

open Cmdliner

let socket =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (created; removed on exit).")

let workers =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~docv:"N"
        ~doc:"Long-lived worker processes in the supervised pool.")

let queue_cap =
  Arg.(
    value
    & opt int Service.Server.default_queue_cap
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:
          "Admission queue bound: jobs waiting for a worker beyond $(docv) \
           are refused with an overloaded reply, never buffered.")

let client_cap =
  Arg.(
    value & opt int 0
    & info [ "client-cap" ] ~docv:"N"
        ~doc:
          "Per-client share of the admission queue, so one flooding \
           client cannot starve the rest. 0 (the default) means a \
           quarter of --queue-cap.")

let cache_cap =
  Arg.(
    value & opt int 4096
    & info [ "cache-cap" ] ~docv:"N"
        ~doc:"In-memory LRU capacity of each worker's certificate store.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "On-disk certificate tier shared by all workers; bundles served \
           from it are always re-verified locally first.")

let disk_cap =
  Arg.(
    value & opt int 0
    & info [ "disk-cap" ] ~docv:"N"
        ~doc:
          "Cap the on-disk tier at $(docv) records (LRU by mtime). 0 \
           means unbounded.")

let degrade_after =
  Arg.(
    value & opt int 3
    & info [ "degrade-after" ] ~docv:"N"
        ~doc:
          "Demote a worker's store to memory-only after $(docv) \
           consecutive disk failures; it keeps serving, marked degraded.")

let deadline_ms =
  Arg.(
    value & opt float 0.0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-job retry/deadline budget. 0 means unbounded; a \
           submission may carry its own tighter budget.")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Inject storage faults into every worker (testing/drills); same \
           plan language as certd --faults. A crash fault kills the \
           worker process — the supervisor respawns it.")

let base_dir =
  Arg.(
    value & opt string "."
    & info [ "base-dir" ] ~docv:"DIR"
        ~doc:"Directory that file= paths in submitted jobs resolve against.")

let timed =
  Arg.(
    value & flag
    & info [ "timed" ]
        ~doc:
          "Collect per-stage timing samples from the workers; they feed \
           the p50/p90/p99 figures on the stats endpoint.")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress lifecycle log lines.")

let journal_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal-dir" ] ~docv:"DIR"
        ~doc:
          "Write-ahead journal directory: every delta-session reply is \
           appended (checksummed) before it is served, and a restarted \
           daemon replays the journal so clients resume their edit \
           streams. Without it the daemon is memory-only and resume is \
           refused.")

let fsync =
  Arg.(
    value & opt string "every=8"
    & info [ "fsync" ] ~docv:"POLICY"
        ~doc:
          "Journal durability policy: $(b,always) (fsync after every \
           record), $(b,never) (leave it to the page cache), or \
           $(b,every=N) (fsync every N records — the default, N=8).")

let checkpoint_every =
  Arg.(
    value & opt int 256
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Compact the journal after $(docv) appended records: live \
           sessions are snapshotted into a fresh journal (tmp + rename) \
           and closed sessions drop out.")

let supervise_flag =
  Arg.(
    value & flag
    & info [ "supervise" ]
        ~doc:
          "Run the daemon as a supervised child: respawn it with bounded \
           backoff when it dies abnormally (crash, SIGKILL, fault drill), \
           give up after 5 consecutive sub-second lives. With \
           --journal-dir, a respawn replays the journal, so in-flight \
           edit sessions survive the crash.")

let write_batch =
  Arg.(
    value & opt int 1
    & info [ "write-batch" ] ~docv:"B"
        ~doc:
          "Group-commit the on-disk tier: each worker coalesces up to \
           $(docv) new certificates into one batch (single directory \
           fsync), instead of one write per job. 1 (the default) keeps \
           the write-through behaviour.")

let cmd =
  let doc = "persistent certification daemon (serves certd --connect)" in
  Cmd.v
    (Cmd.info "certd-server" ~doc)
    Term.(
      const run $ socket $ workers $ queue_cap $ client_cap $ cache_cap
      $ cache_dir $ disk_cap $ degrade_after $ deadline_ms $ faults
      $ base_dir $ timed $ quiet $ journal_dir $ fsync $ checkpoint_every
      $ supervise_flag $ write_batch)

let () = exit (Cmd.eval cmd)

(* The persistent certification daemon: listen on a unix-domain socket,
   keep a supervised pool of long-lived workers, answer certd --connect
   clients. The protocol, admission control, and supervision live in
   Lcp_service.Server; this binary only parses flags and builds the
   per-worker engine factory.

   Examples:
     certd_server.exe --socket /tmp/certd.sock --workers 4 \
       --cache-dir /tmp/certs --base-dir examples/service
     certd_server.exe --socket /tmp/certd.sock --faults 'torn@9:8' \
       --timed           # storage-fault drill with stage percentiles

   The daemon runs until SIGTERM/SIGINT or a client's shutdown request,
   drains its queue through the workers, and exits 0. Exit code 2 is a
   usage error (bad flag, socket already served). *)

module Service = Lcp_service

let run socket workers queue_cap client_cap cache_cap cache_dir disk_cap
    degrade_after deadline_ms faults base_dir timed quiet =
  if workers < 1 then begin
    prerr_endline "certd-server: --workers must be >= 1";
    exit 2
  end;
  if queue_cap < 1 then begin
    prerr_endline "certd-server: --queue-cap must be >= 1";
    exit 2
  end;
  let client_cap =
    match client_cap with
    | 0 -> Service.Server.default_client_cap queue_cap
    | n when n >= 1 -> n
    | _ ->
        prerr_endline "certd-server: --client-cap must be >= 1";
        exit 2
  in
  let plan =
    match faults with
    | None -> None
    | Some plan_str -> (
        match Service.Blob_io.parse_plan plan_str with
        | Error e ->
            Printf.eprintf "certd-server: --faults: %s\n" e;
            exit 2
        | Ok plan -> Some plan)
  in
  let retry =
    if deadline_ms > 0.0 then
      { Service.Engine.default_retry with deadline_ms }
    else Service.Engine.default_retry
  in
  (* built once inside each worker process, after the fork: private
     memory tier and fault-plan counters per worker, shared disk tier *)
  let make_engine ~worker:_ timing =
    let io =
      Option.map
        (fun plan -> fst (Service.Blob_io.inject ~plan Service.Blob_io.real))
        plan
    in
    Service.Engine.create ~cache_cap ?cache_dir ~cache_disk_cap:disk_cap
      ~degrade_after ?io ~retry ~base_dir ?timing ()
  in
  match
    Service.Server.run
      {
        Service.Server.socket_path = socket;
        workers;
        queue_cap;
        client_cap;
        make_engine;
        timed;
        verbose = not quiet;
      }
  with
  | () -> exit 0
  | exception Sys_error e ->
      Printf.eprintf "certd-server: %s\n" e;
      exit 2

open Cmdliner

let socket =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (created; removed on exit).")

let workers =
  Arg.(
    value & opt int 2
    & info [ "workers" ] ~docv:"N"
        ~doc:"Long-lived worker processes in the supervised pool.")

let queue_cap =
  Arg.(
    value
    & opt int Service.Server.default_queue_cap
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:
          "Admission queue bound: jobs waiting for a worker beyond $(docv) \
           are refused with an overloaded reply, never buffered.")

let client_cap =
  Arg.(
    value & opt int 0
    & info [ "client-cap" ] ~docv:"N"
        ~doc:
          "Per-client share of the admission queue, so one flooding \
           client cannot starve the rest. 0 (the default) means a \
           quarter of --queue-cap.")

let cache_cap =
  Arg.(
    value & opt int 4096
    & info [ "cache-cap" ] ~docv:"N"
        ~doc:"In-memory LRU capacity of each worker's certificate store.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "On-disk certificate tier shared by all workers; bundles served \
           from it are always re-verified locally first.")

let disk_cap =
  Arg.(
    value & opt int 0
    & info [ "disk-cap" ] ~docv:"N"
        ~doc:
          "Cap the on-disk tier at $(docv) records (LRU by mtime). 0 \
           means unbounded.")

let degrade_after =
  Arg.(
    value & opt int 3
    & info [ "degrade-after" ] ~docv:"N"
        ~doc:
          "Demote a worker's store to memory-only after $(docv) \
           consecutive disk failures; it keeps serving, marked degraded.")

let deadline_ms =
  Arg.(
    value & opt float 0.0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Default per-job retry/deadline budget. 0 means unbounded; a \
           submission may carry its own tighter budget.")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Inject storage faults into every worker (testing/drills); same \
           plan language as certd --faults. A crash fault kills the \
           worker process — the supervisor respawns it.")

let base_dir =
  Arg.(
    value & opt string "."
    & info [ "base-dir" ] ~docv:"DIR"
        ~doc:"Directory that file= paths in submitted jobs resolve against.")

let timed =
  Arg.(
    value & flag
    & info [ "timed" ]
        ~doc:
          "Collect per-stage timing samples from the workers; they feed \
           the p50/p90/p99 figures on the stats endpoint.")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress lifecycle log lines.")

let cmd =
  let doc = "persistent certification daemon (serves certd --connect)" in
  Cmd.v
    (Cmd.info "certd-server" ~doc)
    Term.(
      const run $ socket $ workers $ queue_cap $ client_cap $ cache_cap
      $ cache_dir $ disk_cap $ degrade_after $ deadline_ms $ faults
      $ base_dir $ timed $ quiet)

let () = exit (Cmd.eval cmd)

(* The batch certification driver: stream jobs from a manifest through
   the service engine (prove -> encode -> verify, content-addressed
   certificate cache), emit one JSON line per job, and report aggregate
   throughput.

   With --jobs N > 1 the manifest is sharded across N worker processes
   (stable hash of job id); each worker owns a private in-memory cache
   tier while all workers share the on-disk tier (--cache-dir), and the
   merged output is emitted in canonical job-id order — byte-comparable
   with a --jobs 1 run of the same manifest.

   With --connect SOCKET the binary is a client of a running
   certd-server daemon instead: jobs are submitted over the unix-domain
   socket (a bounded window at a time), replies are collected, and the
   output — progress lines, --jsonl, exit code — is byte-compatible
   with the batch paths above. Admission refusals (the daemon's queue
   or this client's quota is full) are retried with a short backoff;
   that is the client half of the daemon's explicit backpressure.

   Examples:
     certd.exe --manifest jobs.manifest
     certd.exe --manifest jobs.manifest --jobs 4 --cache-dir /tmp/certs
     certd.exe --manifest jobs.manifest --passes 2 --cache-dir /tmp/certs
     certd.exe --manifest jobs.manifest --jsonl results.jsonl --quiet
     certd.exe --manifest jobs.manifest --cache-dir /tmp/certs \
       --faults 'fail@3:ENOSPC,torn@5:40'   # storage-fault drill
     certd.exe --manifest jobs.manifest --connect /tmp/certd.sock
     certd.exe --connect /tmp/certd.sock --server-stats
     certd.exe --list-properties

   Exit codes: 0 all jobs served/declined; 1 some job ended in
   input_error/unsound/failed; 2 usage error; 3 simulated crash (a
   crash@N fault point halted the batch — in any worker). *)

module Service = Lcp_service

let list_properties () =
  Printf.printf "properties served by the certification service:\n";
  List.iter
    (fun name ->
      match Service.Registry.find name with
      | Some p ->
          Printf.printf "  %-18s %s\n" name
            (Service.Registry.description_of p)
      | None -> ())
    (Service.Registry.names ());
  Printf.printf "graph formats: %s\n"
    (Service.Graph_io.supported_formats_doc ())

(* ---------------------------------------------------------------- *)
(* client mode: drive a running certd-server over its socket         *)

let dial socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX socket_path);
    fd
  with Unix.Unix_error (e, _, _) ->
    Printf.eprintf "certd: cannot connect to %s: %s\n" socket_path
      (Unix.error_message e);
    exit 2

let client_rpc fd req =
  Service.Wire.write_frame fd (Service.Wire.encode_request req);
  match Service.Wire.read_frame fd with
  | None ->
      prerr_endline "certd: server closed the connection";
      exit 2
  | Some payload -> (
      match Service.Wire.decode_response payload with
      | Ok resp -> resp
      | Error e ->
          Printf.eprintf "certd: bad response from server: %s\n" e;
          exit 2)

(* Submit every job and collect the replies. [window] bounds how many
   submissions this client keeps unanswered — combined with the retry
   on [Overloaded] below, the client cooperates with the daemon's
   admission control instead of fighting it. Results are indexed by
   serial (= manifest order), so the final stable sort by job id
   reproduces exactly the canonical order of a batch run. *)
let client_submit fd ~window ~deadline_ms ~emit ~failed jobs =
  let jobs = Array.of_list jobs in
  let total = Array.length jobs in
  let results = Array.make total None in
  let attempts = Array.make total 0 in
  let max_attempts = 100 in
  let pending = Queue.create () in
  for i = 0 to total - 1 do
    Queue.push i pending
  done;
  let inflight = ref 0 in
  let completed = ref 0 in
  (* serials in replies come from the server; a corrupt one must take
     the protocol-error exit, not raise Invalid_argument on an array *)
  let check_serial serial =
    if serial < 0 || serial >= total then begin
      Printf.eprintf "certd: bad response from server: serial %d out of range\n"
        serial;
      exit 2
    end
  in
  let submit serial =
    Service.Wire.write_frame fd
      (Service.Wire.encode_request
         (Service.Wire.Submit
            {
              serial;
              canonical = false;
              deadline_ms;
              line = Service.Manifest.print_job jobs.(serial);
            }));
    incr inflight
  in
  while !completed < total do
    while (not (Queue.is_empty pending)) && !inflight < window do
      submit (Queue.pop pending)
    done;
    match Service.Wire.read_frame fd with
    | None ->
        Printf.eprintf
          "certd: server closed the connection with %d job(s) unanswered\n"
          (total - !completed);
        exit 1
    | Some payload -> (
        match Service.Wire.decode_response payload with
        | Ok (Service.Wire.Report { serial; id; status; json; canonical }) ->
            check_serial serial;
            decr inflight;
            incr completed;
            results.(serial) <- Some (id, status, json, canonical)
        | Ok (Service.Wire.Overloaded { serial; reason }) ->
            check_serial serial;
            decr inflight;
            attempts.(serial) <- attempts.(serial) + 1;
            if attempts.(serial) >= max_attempts then begin
              Printf.eprintf "certd: job %s refused %d times (last: %s)\n"
                jobs.(serial).Service.Manifest.job_id max_attempts reason;
              exit 1
            end;
            (* admission said "later": honor it before resubmitting *)
            Unix.sleepf 0.05;
            Queue.push serial pending
        | Ok (Service.Wire.Err { serial; reason }) ->
            Printf.eprintf "certd: server rejected %s: %s\n"
              (if serial >= 0 && serial < total then
                 jobs.(serial).Service.Manifest.job_id
               else "a request")
              reason;
            exit 1
        | Ok
            ( Service.Wire.Stats_reply _ | Service.Wire.Pong
            | Service.Wire.Dreport _ ) ->
            prerr_endline "certd: unexpected response from server";
            exit 2
        | Error e ->
            Printf.eprintf "certd: bad response from server: %s\n" e;
            exit 2)
  done;
  (* canonical order: stable sort by id over manifest order *)
  Array.to_list results |> List.filter_map Fun.id
  |> List.stable_sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
  |> List.iter (fun (id, status, json, canonical) ->
         if List.mem status [ "input_error"; "unsound"; "failed" ] then
           failed := true;
         emit ~id ~status ~json ~canonical)

(* Streaming edit mode: open a daemon-side delta session on the
   manifest's single job, then play the edit file through it one batch
   at a time — lock-step, because each edit's meaning depends on the
   graph the previous one left behind. Replies come back in stream
   order and are emitted that way (no id sort: this is a stream, not a
   batch). Overloaded answers are retried with the same backoff as
   batch submissions. *)
let client_edits fd ~deadline_ms ~full ~emit ~failed ~quiet job edits =
  let rec rpc serial req attempts =
    Service.Wire.write_frame fd (Service.Wire.encode_request req);
    match Service.Wire.read_frame fd with
    | None ->
        prerr_endline "certd: server closed the connection mid-stream";
        exit 1
    | Some payload -> (
        match Service.Wire.decode_response payload with
        | Ok (Service.Wire.Dreport { serial = s; id; status; json; canonical; patch })
          when s = serial ->
            (id, status, json, canonical, patch)
        | Ok (Service.Wire.Overloaded { serial = s; reason }) when s = serial ->
            if attempts >= 100 then begin
              Printf.eprintf "certd: edit %d refused %d times (last: %s)\n"
                serial attempts reason;
              exit 1
            end;
            Unix.sleepf 0.05;
            rpc serial req (attempts + 1)
        | Ok (Service.Wire.Err { reason; _ }) ->
            Printf.eprintf "certd: server rejected request %d: %s\n" serial
              reason;
            exit 1
        | Ok _ ->
            prerr_endline "certd: unexpected response in edit stream";
            exit 2
        | Error e ->
            Printf.eprintf "certd: bad response from server: %s\n" e;
            exit 2)
  in
  let handle (id, status, json, canonical, patch) =
    if List.mem status [ "input_error"; "unsound"; "failed" ] then
      failed := true;
    emit ~id ~status ~json ~canonical;
    if not quiet then Printf.printf "%-12s %-13s %s\n%!" id status patch
  in
  let line = Service.Manifest.print_job job in
  handle (rpc 0 (Service.Wire.Delta_open { serial = 0; deadline_ms; line }) 0);
  List.iteri
    (fun i ops ->
      let serial = i + 1 in
      handle
        (rpc serial
           (Service.Wire.Delta_edit { serial; deadline_ms; full; ops })
           0))
    edits

(* the edit file: one delta per line ("add=0-1,2-3 del=4-5"); blank
   lines and #-comments are skipped, an empty line of ops is legal *)
let load_edit_lines file =
  match open_in file with
  | exception Sys_error e ->
      Printf.eprintf "certd: %s\n" e;
      exit 2
  | ic ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            List.rev acc
        | line ->
            let tr = String.trim line in
            if tr = "" || tr.[0] = '#' then go acc else go (tr :: acc)
      in
      go []

let run_client ~socket_path ~window ~deadline_ms ~server_stats
    ~server_shutdown ~manifest ~base_dir ~jsonl ~canonical ~quiet ~edits
    ~edits_full =
  let fd = dial socket_path in
  let finish code =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    exit code
  in
  if server_stats then begin
    (match client_rpc fd Service.Wire.Stats_req with
    | Service.Wire.Stats_reply json -> print_endline json
    | _ ->
        prerr_endline "certd: unexpected response to stats request";
        finish 2);
    finish 0
  end;
  if server_shutdown then begin
    (match client_rpc fd Service.Wire.Shutdown with
    | Service.Wire.Pong -> ()
    | _ ->
        prerr_endline "certd: unexpected response to shutdown request";
        finish 2);
    finish 0
  end;
  let manifest =
    match manifest with
    | Some m -> m
    | None ->
        prerr_endline "certd: --connect needs --manifest (or --server-stats)";
        finish 2
  in
  match Service.Manifest.load_file manifest with
  | Error e ->
      Printf.eprintf "certd: %s\n" e;
      finish 2
  | Ok jobs ->
      (* file= paths are meaningful in the daemon's process, not ours:
         resolve them against --base-dir (default: the manifest's
         directory, exactly as batch mode does) and make them absolute,
         so the daemon reads the same file whatever its own cwd is *)
      let base =
        match base_dir with
        | Some d -> d
        | None -> Filename.dirname manifest
      in
      let jobs =
        List.map
          (fun (j : Service.Manifest.job) ->
            match j.Service.Manifest.source with
            | Service.Manifest.File f ->
                let f =
                  if Filename.is_relative f then Filename.concat base f else f
                in
                let f =
                  if Filename.is_relative f then
                    Filename.concat (Unix.getcwd ()) f
                  else f
                in
                { j with Service.Manifest.source = Service.Manifest.File f }
            | Service.Manifest.Generated _ -> j)
          jobs
      in
      let jsonl_oc =
        match jsonl with
        | None -> None
        | Some "-" -> Some stdout
        | Some f -> Some (open_out f)
      in
      let emit ~id ~status ~json ~canonical:canonical_line =
        (match jsonl_oc with
        | Some oc ->
            output_string oc (if canonical then canonical_line else json);
            output_char oc '\n'
        | None -> ());
        if not quiet then Printf.printf "%-12s %s\n%!" id status
      in
      let failed = ref false in
      (match edits with
      | Some edits_file -> (
          match jobs with
          | [ job ] ->
              client_edits fd ~deadline_ms ~full:edits_full ~emit ~failed
                ~quiet job
                (load_edit_lines edits_file)
          | _ ->
              Printf.eprintf
                "certd: --edits needs a manifest with exactly one job (got %d)\n"
                (List.length jobs);
              finish 2)
      | None -> client_submit fd ~window ~deadline_ms ~emit ~failed jobs);
      (match jsonl_oc with
      | Some oc when oc != stdout -> close_out oc
      | _ -> ());
      finish (if !failed then 1 else 0)

let run manifest base_dir cache_cap cache_dir disk_cap faults jsonl canonical
    passes njobs quiet list_props connect window deadline_ms server_stats
    server_shutdown edits edits_full =
  if list_props then begin
    list_properties ();
    exit 0
  end;
  (match connect with
  | Some socket_path ->
      if window < 1 then begin
        prerr_endline "certd: --window must be >= 1";
        exit 2
      end;
      run_client ~socket_path ~window ~deadline_ms ~server_stats
        ~server_shutdown ~manifest ~base_dir ~jsonl ~canonical ~quiet ~edits
        ~edits_full
  | None ->
      if server_stats || server_shutdown then begin
        prerr_endline "certd: --server-stats/--server-shutdown need --connect";
        exit 2
      end;
      if edits <> None || edits_full then begin
        prerr_endline "certd: --edits/--edits-full need --connect";
        exit 2
      end);
  let manifest =
    match manifest with
    | Some m -> m
    | None ->
        prerr_endline
          "certd: --manifest is required (or --list-properties); see --help";
        exit 2
  in
  let workers =
    match njobs with
    | 0 -> Service.Pool.default_workers ()
    | n when n >= 1 -> n
    | n ->
        Printf.eprintf "certd: --jobs must be >= 1 (got %d)\n" n;
        exit 2
  in
  let plan =
    match faults with
    | None -> None
    | Some plan_str -> (
        match Service.Blob_io.parse_plan plan_str with
        | Error e ->
            Printf.eprintf "certd: --faults: %s\n" e;
            exit 2
        | Ok plan -> Some plan)
  in
  (* Called once per worker, inside it: each worker gets a private
     memory tier and its own fault-plan counters; the disk tier
     (--cache-dir) is the shared one. *)
  let make_engine ~base_dir timing =
    let io =
      Option.map
        (fun plan -> fst (Service.Blob_io.inject ~plan Service.Blob_io.real))
        plan
    in
    Service.Engine.create ~cache_cap ?cache_dir ~cache_disk_cap:disk_cap ?io
      ~base_dir ?timing ()
  in
  match Service.Manifest.load_file manifest with
  | Error e ->
      Printf.eprintf "certd: %s\n" e;
      exit 2
  | Ok jobs ->
      let base_dir =
        match base_dir with Some d -> d | None -> Filename.dirname manifest
      in
      let make_engine = make_engine ~base_dir in
      let timing = Service.Timing.create () in
      (* the first engine doubles as the probe: an uncreatable cache
         directory (or a fault plan whose op 1 is that very mkdir)
         surfaces as a clean error before any output. In sequential
         mode this engine IS the engine, so its orphan sweep lands in
         the footer; in sharded mode the workers build their own (with
         fresh fault-plan counters) and this one's store counters are
         folded into the cold pass's footer instead of being lost *)
      let first_engine =
        try make_engine (Some timing) with
        | Sys_error e ->
            Printf.eprintf "certd: %s\n" e;
            exit 2
        | Service.Blob_io.Crashed p ->
            Printf.eprintf "certd: simulated crash (fault plan) at %s\n" p;
            exit 3
      in
      let jsonl_oc =
        match jsonl with
        | None -> None
        | Some "-" -> Some stdout
        | Some f -> Some (open_out f)
      in
      let failed = ref false in
      let emit (r : Service.Stats.job_report) =
        (match jsonl_oc with
        | Some oc ->
            output_string oc
              (if canonical then Service.Stats.to_canonical_json r
               else Service.Stats.to_json r);
            output_char oc '\n'
        | None -> ());
        if Service.Stats.is_failure r.Service.Stats.r_status then
          failed := true;
        if not quiet then
          Printf.printf "%-12s %-18s k=%d n=%-5d m=%-5d %-13s %8.2f ms%s\n%!"
            r.Service.Stats.r_id r.Service.Stats.r_property
            r.Service.Stats.r_k r.Service.Stats.r_n r.Service.Stats.r_m
            (Service.Stats.status_name r.Service.Stats.r_status)
            r.Service.Stats.r_total_ms
            (if r.Service.Stats.r_cache_hit then "  [cache hit]" else "")
      in
      let last_store = ref None in
      let finish code =
        (match !last_store with
        | Some (stats, degraded) ->
            Format.printf "store: %a%s@." Service.Cert_store.pp_stats stats
              (if degraded then " [DEGRADED: memory-only]" else "")
        | None -> ());
        Format.printf "%a@." Service.Timing.pp timing;
        (match jsonl_oc with
        | Some oc when oc != stdout -> close_out oc
        | _ -> ());
        exit code
      in
      (try
         if workers = 1 then begin
           (* classic path: one engine for every pass, so --passes warms
              the in-memory tier even without --cache-dir *)
           let engine = first_engine in
           for pass = 1 to passes do
             if not quiet && passes > 1 then
               Printf.printf "--- pass %d/%d %s\n" pass passes
                 (if pass = 1 then "(cold)" else "(warm)");
             let _, summary = Service.Engine.run_jobs ~emit engine jobs in
             Format.printf "%a@." Service.Stats.pp_summary summary;
             let store = Service.Engine.store engine in
             last_store :=
               Some
                 ( Service.Cert_store.stats store,
                   Service.Cert_store.degraded store )
           done
         end
         else begin
           let probe_stats =
             Service.Cert_store.stats (Service.Engine.store first_engine)
           in
           for pass = 1 to passes do
             if not quiet && passes > 1 then
               Printf.printf "--- pass %d/%d %s\n" pass passes
                 (if pass = 1 then "(cold)"
                  else "(warm via shared disk tier)");
             let outcome =
               (* on Ctrl-C the pool reaps its workers, then this sweep
                  removes their half-written .tmp spool files from the
                  shared disk tier *)
               Service.Pool.run ~emit ~timing ~workers ~make_engine
                 ?on_interrupt:
                   (Option.map
                      (fun dir () ->
                        ignore (Service.Pool.sweep_tmp_files dir : int))
                      cache_dir)
                 jobs
             in
             Format.printf "%a@." Service.Stats.pp_summary
               outcome.Service.Pool.summary;
             let stats =
               if pass = 1 then
                 Service.Cert_store.add_stats probe_stats
                   outcome.Service.Pool.store_stats
               else outcome.Service.Pool.store_stats
             in
             last_store := Some (stats, outcome.Service.Pool.degraded)
           done
         end
       with Service.Blob_io.Crashed p ->
         Printf.eprintf "certd: simulated crash (fault plan) at %s\n" p;
         finish 3);
      finish (if !failed then 1 else 0)

open Cmdliner

let manifest =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"FILE"
        ~doc:"Manifest file listing certification jobs (see lib/service).")

let base_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "base-dir" ] ~docv:"DIR"
        ~doc:
          "Directory that file= paths in the manifest resolve against \
           (default: the manifest's directory).")

let cache_cap =
  Arg.(
    value & opt int 4096
    & info [ "cache-cap" ] ~docv:"N"
        ~doc:"In-memory LRU capacity of the certificate store.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist encoded certificate bundles here; entries survive \
           restarts and LRU eviction. Served bundles are always \
           re-verified locally first.")

let disk_cap =
  Arg.(
    value & opt int 0
    & info [ "disk-cap" ] ~docv:"N"
        ~doc:
          "Cap the on-disk certificate tier at $(docv) records; the \
           least-recently-used records (by mtime) are garbage-collected \
           past the cap. 0 means unbounded.")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Inject storage faults (testing/drills). $(docv) is a \
           comma-separated list over the sequence of mutating file ops: \
           fail@N[:TAG] (op N raises, e.g. ENOSPC; N+ makes it \
           persistent), torn@N:B (write truncated at byte B, then \
           crash), flip@N:B (silent bit flip at bit B), crash@N \
           (process death before op N; certd exits 3).")

let jsonl =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE"
        ~doc:"Write one JSON object per job to $(docv) ('-' for stdout).")

let canonical =
  Arg.(
    value & flag
    & info [ "canonical" ]
        ~doc:
          "Emit the canonical projection in --jsonl lines: volatile fields \
           (timings, fresh-vs-cached serving detail) dropped, so two runs of \
           one manifest are byte-comparable however they were sharded.")

let passes =
  Arg.(
    value & opt int 1
    & info [ "passes" ] ~docv:"P"
        ~doc:
          "Run the whole manifest $(docv) times against the same store \
           (pass 2+ measures the warm cache).")

let njobs =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard the manifest across $(docv) worker processes (stable \
           hash of job id). Each worker has a private in-memory cache \
           tier; all workers share the --cache-dir disk tier. Output is \
           merged in canonical job-id order. 0 (the default) means the \
           machine's core count.")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-job progress lines.")

let list_props =
  Arg.(
    value & flag
    & info [ "list-properties" ]
        ~doc:"Print the property catalogue and graph formats, then exit.")

let connect =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCKET"
        ~doc:
          "Client mode: submit the manifest's jobs to the certd-server \
           daemon listening on the unix-domain socket $(docv) instead of \
           running them in-process. Output and exit codes match batch mode.")

let window =
  Arg.(
    value & opt int 16
    & info [ "window" ] ~docv:"N"
        ~doc:
          "With --connect: keep at most $(docv) submissions unanswered at \
           a time.")

let deadline_ms =
  Arg.(
    value & opt float 0.0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "With --connect: per-job deadline budget the daemon's retry \
           policy must respect. 0 means the daemon's default.")

let server_stats =
  Arg.(
    value & flag
    & info [ "server-stats" ]
        ~doc:
          "With --connect: print the daemon's live statistics (queue, \
           workers, store, stage percentiles) as JSON and exit.")

let server_shutdown =
  Arg.(
    value & flag
    & info [ "server-shutdown" ]
        ~doc:
          "With --connect: ask the daemon to drain its queue and exit, as \
           SIGTERM would.")

let edits =
  Arg.(
    value
    & opt (some string) None
    & info [ "edits" ] ~docv:"FILE"
        ~doc:
          "With --connect: streaming edit mode. Open a daemon-side delta \
           session on the manifest's single job, then apply $(docv) one \
           line at a time (each line an edit batch like \
           'add=0-1,2-3 del=4-5'; blank lines and #-comments skipped). \
           Each step is re-certified incrementally and re-verified before \
           it is served; replies stream back in edit order.")

let edits_full =
  Arg.(
    value & flag
    & info [ "edits-full" ]
        ~doc:
          "With --edits: force a from-scratch recompute at every step \
           (same representation policy, no splice) — the differential \
           anchor whose canonical JSONL must match the incremental run \
           byte for byte.")

let cmd =
  let doc = "batch certification service driver (cached Theorem 1 pipeline)" in
  Cmd.v
    (Cmd.info "certd" ~doc)
    Term.(
      const run $ manifest $ base_dir $ cache_cap $ cache_dir $ disk_cap
      $ faults $ jsonl $ canonical $ passes $ njobs $ quiet $ list_props
      $ connect $ window $ deadline_ms $ server_stats $ server_shutdown
      $ edits $ edits_full)

let () = exit (Cmd.eval cmd)

(* The batch certification driver: stream jobs from a manifest through
   the service engine (prove -> encode -> verify, content-addressed
   certificate cache), emit one JSON line per job, and report aggregate
   throughput.

   With --jobs N > 1 the manifest is sharded across N worker processes
   (stable hash of job id); each worker owns a private in-memory cache
   tier while all workers share the on-disk tier (--cache-dir), and the
   merged output is emitted in canonical job-id order — byte-comparable
   with a --jobs 1 run of the same manifest.

   With --connect SOCKET the binary is a client of a running
   certd-server daemon instead: jobs are submitted over the unix-domain
   socket (a bounded window at a time), replies are collected, and the
   output — progress lines, --jsonl, exit code — is byte-compatible
   with the batch paths above. Admission refusals (the daemon's queue
   or this client's quota is full) are retried with a short backoff;
   that is the client half of the daemon's explicit backpressure.

   Examples:
     certd.exe --manifest jobs.manifest
     certd.exe --manifest jobs.manifest --jobs 4 --cache-dir /tmp/certs
     certd.exe --manifest jobs.manifest --passes 2 --cache-dir /tmp/certs
     certd.exe --manifest jobs.manifest --jsonl results.jsonl --quiet
     certd.exe --manifest jobs.manifest --cache-dir /tmp/certs \
       --faults 'fail@3:ENOSPC,torn@5:40'   # storage-fault drill
     certd.exe --manifest jobs.manifest --connect /tmp/certd.sock
     certd.exe --connect /tmp/certd.sock --server-stats
     certd.exe --list-properties

   Exit codes: 0 all jobs served/declined; 1 some job ended in
   input_error/unsound/failed; 2 usage error; 3 simulated crash (a
   crash@N fault point halted the batch — in any worker). *)

module Service = Lcp_service

let list_properties () =
  Printf.printf "properties served by the certification service:\n";
  List.iter
    (fun name ->
      match Service.Registry.find name with
      | Some p ->
          Printf.printf "  %-18s %s\n" name
            (Service.Registry.description_of p)
      | None -> ())
    (Service.Registry.names ());
  Printf.printf "graph formats: %s\n"
    (Service.Graph_io.supported_formats_doc ())

(* ---------------------------------------------------------------- *)
(* client mode: drive a running certd-server over its socket         *)

let try_dial socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

(* the mandatory first exchange on every connection: version check up
   front, so a protocol mismatch is one descriptive error instead of a
   decode failure mid-stream *)
let try_hello fd =
  match
    Service.Wire.write_frame fd
      (Service.Wire.encode_request
         (Service.Wire.Hello { version = Service.Wire.protocol_version }));
    Service.Wire.read_frame fd
  with
  | Some payload -> (
      match Service.Wire.decode_response payload with
      | Ok (Service.Wire.Hello_ok _) -> Ok ()
      | Ok (Service.Wire.Err { reason; _ }) -> Error (`Fatal reason)
      | Ok _ -> Error (`Fatal "unexpected handshake response")
      | Error e -> Error (`Fatal e))
  | None -> Error `Lost
  | exception (Sys_error _ | Unix.Unix_error _) -> Error `Lost

let dial socket_path =
  match try_dial socket_path with
  | None ->
      Printf.eprintf "certd: cannot connect to %s\n" socket_path;
      exit 2
  | Some fd -> (
      match try_hello fd with
      | Ok () -> fd
      | Error (`Fatal reason) ->
          Printf.eprintf "certd: server refused the handshake: %s\n" reason;
          exit 2
      | Error `Lost ->
          prerr_endline "certd: server closed the connection during handshake";
          exit 2)

(* Exponential-backoff redial, for riding out a server restart: a
   supervised daemon respawns within a couple of seconds plus journal
   recovery, so ~14 s of patience covers it without hammering the
   socket. Returns a fresh post-handshake connection, or [None]. *)
let reconnect socket_path =
  let rec go n delay =
    if n > 12 then None
    else begin
      Unix.sleepf delay;
      let next () = go (n + 1) (Float.min 1.6 (delay *. 2.0)) in
      match try_dial socket_path with
      | None -> next ()
      | Some fd -> (
          match try_hello fd with
          | Ok () -> Some fd
          | Error _ ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              next ())
    end
  in
  go 0 0.05

let reconnect_or_die socket_path =
  match reconnect socket_path with
  | Some fd -> fd
  | None ->
      Printf.eprintf "certd: cannot reconnect to %s; giving up\n" socket_path;
      exit 1

let client_rpc fd req =
  Service.Wire.write_frame fd (Service.Wire.encode_request req);
  match Service.Wire.read_frame fd with
  | None ->
      prerr_endline "certd: server closed the connection";
      exit 2
  | Some payload -> (
      match Service.Wire.decode_response payload with
      | Ok resp -> resp
      | Error e ->
          Printf.eprintf "certd: bad response from server: %s\n" e;
          exit 2)

(* Submit every job and collect the replies. [window] bounds how many
   submissions this client keeps unanswered — combined with the retry
   on [Overloaded] below, the client cooperates with the daemon's
   admission control instead of fighting it. Results are indexed by
   serial (= manifest order), so the final stable sort by job id
   reproduces exactly the canonical order of a batch run.

   A lost connection (the server was killed and respawned) is survived
   by reconnecting with backoff and resubmitting every unanswered
   serial: one-shot jobs are idempotent — the pipeline is
   deterministic, so a recomputed reply is the reply — and each serial
   lands in [results] exactly once, whatever the resend count. *)
let client_submit fd0 ~socket_path ~window ~deadline_ms ~emit ~failed jobs =
  let fd = ref fd0 in
  let jobs = Array.of_list jobs in
  let total = Array.length jobs in
  let results = Array.make total None in
  let attempts = Array.make total 0 in
  let max_attempts = 100 in
  let pending = Queue.create () in
  for i = 0 to total - 1 do
    Queue.push i pending
  done;
  let inflight = Hashtbl.create 16 in
  let completed = ref 0 in
  (* serials in replies come from the server; a corrupt one must take
     the protocol-error exit, not raise Invalid_argument on an array *)
  let check_serial serial =
    if serial < 0 || serial >= total then begin
      Printf.eprintf "certd: bad response from server: serial %d out of range\n"
        serial;
      exit 2
    end
  in
  let submit serial =
    (* register before writing: a write torn by a dying server must
       still count as in flight, so the resubmission sweep covers it *)
    Hashtbl.replace inflight serial ();
    Service.Wire.write_frame !fd
      (Service.Wire.encode_request
         (Service.Wire.Submit
            {
              serial;
              canonical = false;
              deadline_ms;
              line = Service.Manifest.print_job jobs.(serial);
            }))
  in
  let on_lost () =
    Printf.eprintf
      "certd: connection lost; reconnecting to resubmit %d in-flight job(s)\n%!"
      (Hashtbl.length inflight);
    fd := reconnect_or_die socket_path;
    Hashtbl.iter (fun serial () -> Queue.push serial pending) inflight;
    Hashtbl.reset inflight
  in
  while !completed < total do
    match
      while (not (Queue.is_empty pending)) && Hashtbl.length inflight < window
      do
        submit (Queue.pop pending)
      done;
      Service.Wire.read_frame !fd
    with
    | exception (Sys_error _ | Unix.Unix_error _) -> on_lost ()
    | None -> on_lost ()
    | Some payload -> (
        match Service.Wire.decode_response payload with
        | Ok (Service.Wire.Report { serial; id; status; json; canonical }) ->
            check_serial serial;
            Hashtbl.remove inflight serial;
            if results.(serial) = None then incr completed;
            results.(serial) <- Some (id, status, json, canonical)
        | Ok (Service.Wire.Overloaded { serial; reason }) ->
            check_serial serial;
            Hashtbl.remove inflight serial;
            attempts.(serial) <- attempts.(serial) + 1;
            if attempts.(serial) >= max_attempts then begin
              Printf.eprintf "certd: job %s refused %d times (last: %s)\n"
                jobs.(serial).Service.Manifest.job_id max_attempts reason;
              exit 1
            end;
            (* admission said "later": honor it before resubmitting *)
            Unix.sleepf 0.05;
            Queue.push serial pending
        | Ok (Service.Wire.Err { serial; reason }) ->
            Printf.eprintf "certd: server rejected %s: %s\n"
              (if serial >= 0 && serial < total then
                 jobs.(serial).Service.Manifest.job_id
               else "a request")
              reason;
            exit 1
        | Ok
            ( Service.Wire.Stats_reply _ | Service.Wire.Pong
            | Service.Wire.Hello_ok _ | Service.Wire.Dreport _ ) ->
            prerr_endline "certd: unexpected response from server";
            exit 2
        | Error e ->
            Printf.eprintf "certd: bad response from server: %s\n" e;
            exit 2)
  done;
  (* canonical order: stable sort by id over manifest order *)
  Array.to_list results |> List.filter_map Fun.id
  |> List.stable_sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
  |> List.iter (fun (id, status, json, canonical) ->
         if List.mem status [ "input_error"; "unsound"; "failed" ] then
           failed := true;
         emit ~id ~status ~json ~canonical)

(* Streaming edit mode: open a daemon-side delta session on the
   manifest's single job, then play the edit file through it one batch
   at a time — lock-step, because each edit's meaning depends on the
   graph the previous one left behind. Replies come back in stream
   order and are emitted that way (no id sort: this is a stream, not a
   batch). Overloaded answers are retried with the same backoff as
   batch submissions — with a much deeper budget than batch mode,
   because a freshly resumed session replays its whole history through
   the queue before our next edit gets a slot.

   A lost connection mid-stream is survived, not fatal: reconnect with
   backoff, re-open the session with resume=1 (the server rebuilds the
   graph from its journal and answers the open from the journaled
   reply), then resend the request that was in flight. The journal
   dedups by serial, so a request whose reply we never saw comes back
   byte-identical whether it had been applied or not — the emitted
   JSONL is exactly-once either way. *)
let client_edits fd0 ~socket_path ~sid ~deadline_ms ~full ~emit ~failed ~quiet
    job edits =
  let fd = ref fd0 in
  let opened = ref false in
  let line = Service.Manifest.print_job job in
  let max_attempts = 600 in
  let rec rpc serial req attempts =
    match
      Service.Wire.write_frame !fd (Service.Wire.encode_request req);
      Service.Wire.read_frame !fd
    with
    | exception (Sys_error _ | Unix.Unix_error _) -> lost serial req attempts
    | None -> lost serial req attempts
    | Some payload -> (
        match Service.Wire.decode_response payload with
        | Ok (Service.Wire.Dreport { serial = s; id; status; json; canonical; patch })
          when s = serial ->
            (id, status, json, canonical, patch)
        | Ok (Service.Wire.Overloaded { serial = s; reason }) when s = serial ->
            if attempts >= max_attempts then begin
              Printf.eprintf "certd: edit %d refused %d times (last: %s)\n"
                serial attempts reason;
              exit 1
            end;
            Unix.sleepf 0.05;
            rpc serial req (attempts + 1)
        | Ok (Service.Wire.Err { reason; _ }) ->
            Printf.eprintf "certd: server rejected request %d: %s\n" serial
              reason;
            exit 1
        | Ok _ ->
            prerr_endline "certd: unexpected response in edit stream";
            exit 2
        | Error e ->
            Printf.eprintf "certd: bad response from server: %s\n" e;
            exit 2)
  and lost serial req attempts =
    Printf.eprintf
      "certd: connection lost mid-stream; reconnecting to resume session %s\n%!"
      sid;
    fd := reconnect_or_die socket_path;
    if !opened then begin
      (* the re-open's reply is the journaled open report we already
         emitted at serial 0 — consume and discard it *)
      let _, status, _, _, _ =
        rpc 0
          (Service.Wire.Delta_open
             { serial = 0; deadline_ms; sid; resume = true; line = "" })
          0
      in
      Printf.eprintf "certd: session %s resumed (open report: %s)\n%!" sid
        status
    end;
    rpc serial req attempts
  in
  let handle (id, status, json, canonical, patch) =
    if List.mem status [ "input_error"; "unsound"; "failed" ] then
      failed := true;
    emit ~id ~status ~json ~canonical;
    if not quiet then Printf.printf "%-12s %-13s %s\n%!" id status patch
  in
  let open_reply =
    rpc 0
      (Service.Wire.Delta_open
         { serial = 0; deadline_ms; sid; resume = false; line })
      0
  in
  opened := true;
  handle open_reply;
  List.iteri
    (fun i ops ->
      let serial = i + 1 in
      handle
        (rpc serial
           (Service.Wire.Delta_edit { serial; deadline_ms; full; ops })
           0))
    edits

(* the edit file: one delta per line ("add=0-1,2-3 del=4-5"); blank
   lines and #-comments are skipped, an empty line of ops is legal *)
let load_edit_lines file =
  match open_in file with
  | exception Sys_error e ->
      Printf.eprintf "certd: %s\n" e;
      exit 2
  | ic ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file ->
            close_in ic;
            List.rev acc
        | line ->
            let tr = String.trim line in
            if tr = "" || tr.[0] = '#' then go acc else go (tr :: acc)
      in
      go []

let run_client ~socket_path ~window ~deadline_ms ~server_stats
    ~server_shutdown ~manifest ~base_dir ~jsonl ~canonical ~quiet ~edits
    ~edits_full ~session =
  let fd = dial socket_path in
  let finish code =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    exit code
  in
  if server_stats then begin
    (match client_rpc fd Service.Wire.Stats_req with
    | Service.Wire.Stats_reply json -> print_endline json
    | _ ->
        prerr_endline "certd: unexpected response to stats request";
        finish 2);
    finish 0
  end;
  if server_shutdown then begin
    (match client_rpc fd Service.Wire.Shutdown with
    | Service.Wire.Pong -> ()
    | _ ->
        prerr_endline "certd: unexpected response to shutdown request";
        finish 2);
    finish 0
  end;
  let manifest =
    match manifest with
    | Some m -> m
    | None ->
        prerr_endline "certd: --connect needs --manifest (or --server-stats)";
        finish 2
  in
  match Service.Manifest.load_file manifest with
  | Error e ->
      Printf.eprintf "certd: %s\n" e;
      finish 2
  | Ok jobs ->
      (* file= paths are meaningful in the daemon's process, not ours:
         resolve them against --base-dir (default: the manifest's
         directory, exactly as batch mode does) and make them absolute,
         so the daemon reads the same file whatever its own cwd is *)
      let base =
        match base_dir with
        | Some d -> d
        | None -> Filename.dirname manifest
      in
      let jobs =
        List.map
          (fun (j : Service.Manifest.job) ->
            match j.Service.Manifest.source with
            | Service.Manifest.File f ->
                let f =
                  if Filename.is_relative f then Filename.concat base f else f
                in
                let f =
                  if Filename.is_relative f then
                    Filename.concat (Unix.getcwd ()) f
                  else f
                in
                { j with Service.Manifest.source = Service.Manifest.File f }
            | Service.Manifest.Generated _ -> j)
          jobs
      in
      let jsonl_oc =
        match jsonl with
        | None -> None
        | Some "-" -> Some stdout
        | Some f -> Some (open_out f)
      in
      let emit ~id ~status ~json ~canonical:canonical_line =
        (match jsonl_oc with
        | Some oc ->
            output_string oc (if canonical then canonical_line else json);
            output_char oc '\n'
        | None -> ());
        if not quiet then Printf.printf "%-12s %s\n%!" id status
      in
      let failed = ref false in
      (match edits with
      | Some edits_file -> (
          match jobs with
          | [ job ] ->
              (* the resume handle: stable across reconnects of this
                 process, unique across processes unless the user pins
                 it (--session) to hand a stream over deliberately *)
              let sid =
                match session with
                | Some s
                  when s = ""
                       || String.exists
                            (fun ch -> ch = ' ' || ch = '\t' || ch = '\n')
                            s ->
                    prerr_endline
                      "certd: --session must be a nonempty word (no whitespace)";
                    finish 2
                | Some s -> s
                | None ->
                    Printf.sprintf "c%d-%x" (Unix.getpid ())
                      (int_of_float (Unix.gettimeofday () *. 1000.) land 0xffffff)
              in
              client_edits fd ~socket_path ~sid ~deadline_ms ~full:edits_full
                ~emit ~failed ~quiet job
                (load_edit_lines edits_file)
          | _ ->
              Printf.eprintf
                "certd: --edits needs a manifest with exactly one job (got %d)\n"
                (List.length jobs);
              finish 2)
      | None ->
          client_submit fd ~socket_path ~window ~deadline_ms ~emit ~failed jobs);
      (match jsonl_oc with
      | Some oc when oc != stdout -> close_out oc
      | _ -> ());
      finish (if !failed then 1 else 0)

exception Stream_input of string
(** a manifest parse/read error surfaced mid-stream (--stream) *)

let run manifest base_dir cache_cap cache_dir disk_cap faults jsonl canonical
    passes njobs quiet list_props connect window deadline_ms server_stats
    server_shutdown edits edits_full session stream workload write_batch =
  if list_props then begin
    list_properties ();
    exit 0
  end;
  (match connect with
  | Some socket_path ->
      if window < 1 then begin
        prerr_endline "certd: --window must be >= 1";
        exit 2
      end;
      if stream || workload <> None || write_batch <> 1 then begin
        prerr_endline
          "certd: --stream/--workload/--write-batch are batch-mode flags \
           (not with --connect)";
        exit 2
      end;
      run_client ~socket_path ~window ~deadline_ms ~server_stats
        ~server_shutdown ~manifest ~base_dir ~jsonl ~canonical ~quiet ~edits
        ~edits_full ~session
  | None ->
      if server_stats || server_shutdown then begin
        prerr_endline "certd: --server-stats/--server-shutdown need --connect";
        exit 2
      end;
      if edits <> None || edits_full || session <> None then begin
        prerr_endline "certd: --edits/--edits-full/--session need --connect";
        exit 2
      end);
  if write_batch < 1 then begin
    prerr_endline "certd: --write-batch must be >= 1";
    exit 2
  end;
  let workload_spec =
    match workload with
    | None -> None
    | Some s -> (
        match Service.Workload.parse_spec s with
        | Ok spec -> Some spec
        | Error e ->
            Printf.eprintf "certd: --workload: %s\n" e;
            exit 2)
  in
  let manifest =
    match (manifest, workload_spec) with
    | Some _, Some _ ->
        prerr_endline "certd: --manifest and --workload are exclusive";
        exit 2
    | Some m, None -> Some m
    | None, Some _ -> None
    | None, None ->
        prerr_endline
          "certd: --manifest is required (or --workload / --list-properties); \
           see --help";
        exit 2
  in
  let streaming = stream || workload_spec <> None in
  let workers =
    match njobs with
    | 0 -> Service.Pool.default_workers ()
    | n when n >= 1 -> n
    | n ->
        Printf.eprintf "certd: --jobs must be >= 1 (got %d)\n" n;
        exit 2
  in
  let plan =
    match faults with
    | None -> None
    | Some plan_str -> (
        match Service.Blob_io.parse_plan plan_str with
        | Error e ->
            Printf.eprintf "certd: --faults: %s\n" e;
            exit 2
        | Ok plan -> Some plan)
  in
  (* Called once per worker, inside it: each worker gets a private
     memory tier and its own fault-plan counters; the disk tier
     (--cache-dir) is the shared one. *)
  let make_engine ~base_dir timing =
    let io =
      Option.map
        (fun plan -> fst (Service.Blob_io.inject ~plan Service.Blob_io.real))
        plan
    in
    Service.Engine.create ~cache_cap ?cache_dir ~cache_disk_cap:disk_cap
      ~write_batch ?io ~base_dir ?timing ()
  in
  let jobs_or_stream =
    if streaming then `Stream
    else
      match Service.Manifest.load_file (Option.get manifest) with
      | Error e ->
          Printf.eprintf "certd: %s\n" e;
          exit 2
      | Ok jobs -> `Jobs jobs
  in
  match jobs_or_stream with
  | (`Jobs _ | `Stream) as jobs_or_stream ->
      let base_dir =
        match base_dir with
        | Some d -> d
        | None -> (
            match manifest with Some m -> Filename.dirname m | None -> ".")
      in
      let make_engine = make_engine ~base_dir in
      let timing = Service.Timing.create () in
      (* the first engine doubles as the probe: an uncreatable cache
         directory (or a fault plan whose op 1 is that very mkdir)
         surfaces as a clean error before any output. In sequential
         mode this engine IS the engine, so its orphan sweep lands in
         the footer; in sharded mode the workers build their own (with
         fresh fault-plan counters) and this one's store counters are
         folded into the cold pass's footer instead of being lost *)
      let first_engine =
        try make_engine (Some timing) with
        | Sys_error e ->
            Printf.eprintf "certd: %s\n" e;
            exit 2
        | Service.Blob_io.Crashed p ->
            Printf.eprintf "certd: simulated crash (fault plan) at %s\n" p;
            exit 3
      in
      let jsonl_oc =
        match jsonl with
        | None -> None
        | Some "-" -> Some stdout
        | Some f -> Some (open_out f)
      in
      let failed = ref false in
      let emit (r : Service.Stats.job_report) =
        (match jsonl_oc with
        | Some oc ->
            output_string oc
              (if canonical then Service.Stats.to_canonical_json r
               else Service.Stats.to_json r);
            output_char oc '\n'
        | None -> ());
        if Service.Stats.is_failure r.Service.Stats.r_status then
          failed := true;
        if not quiet then
          Printf.printf "%-12s %-18s k=%d n=%-5d m=%-5d %-13s %8.2f ms%s\n%!"
            r.Service.Stats.r_id r.Service.Stats.r_property
            r.Service.Stats.r_k r.Service.Stats.r_n r.Service.Stats.r_m
            (Service.Stats.status_name r.Service.Stats.r_status)
            r.Service.Stats.r_total_ms
            (if r.Service.Stats.r_cache_hit then "  [cache hit]" else "")
      in
      let last_store = ref None in
      let finish code =
        (match !last_store with
        | Some (stats, degraded) ->
            Format.printf "store: %a%s@." Service.Cert_store.pp_stats stats
              (if degraded then " [DEGRADED: memory-only]" else "")
        | None -> ());
        Format.printf "%a@." Service.Timing.pp timing;
        (match jsonl_oc with
        | Some oc when oc != stdout -> close_out oc
        | _ -> ());
        exit code
      in
      (try
         match jobs_or_stream with
         | `Jobs jobs ->
             if workers = 1 then begin
               (* classic path: one engine for every pass, so --passes
                  warms the in-memory tier even without --cache-dir *)
               let engine = first_engine in
               for pass = 1 to passes do
                 if not quiet && passes > 1 then
                   Printf.printf "--- pass %d/%d %s\n" pass passes
                     (if pass = 1 then "(cold)" else "(warm)");
                 let _, summary = Service.Engine.run_jobs ~emit engine jobs in
                 Format.printf "%a@." Service.Stats.pp_summary summary;
                 let store = Service.Engine.store engine in
                 last_store :=
                   Some
                     ( Service.Cert_store.stats store,
                       Service.Cert_store.degraded store )
               done
             end
             else begin
               let probe_stats =
                 Service.Cert_store.stats (Service.Engine.store first_engine)
               in
               for pass = 1 to passes do
                 if not quiet && passes > 1 then
                   Printf.printf "--- pass %d/%d %s\n" pass passes
                     (if pass = 1 then "(cold)"
                      else "(warm via shared disk tier)");
                 let outcome =
                   (* on Ctrl-C the pool reaps its workers, then this
                      sweep removes their half-written .tmp spool files
                      from the shared disk tier *)
                   Service.Pool.run ~emit ~timing ~workers ~make_engine
                     ?on_interrupt:
                       (Option.map
                          (fun dir () ->
                            ignore (Service.Pool.sweep_tmp_files dir : int))
                          cache_dir)
                     jobs
                 in
                 Format.printf "%a@." Service.Stats.pp_summary
                   outcome.Service.Pool.summary;
                 let stats =
                   if pass = 1 then
                     Service.Cert_store.add_stats probe_stats
                       outcome.Service.Pool.store_stats
                   else outcome.Service.Pool.store_stats
                 in
                 last_store := Some (stats, outcome.Service.Pool.degraded)
               done
             end
         | `Stream ->
             (* corpus-scale path: never a whole-corpus job list. Jobs
                stream from the manifest (or the workload generator)
                into Pool.run_stream, which emits reports in feed
                order. A generated workload's ids are sorted, so its
                stream is byte-identical to the batch driver's
                id-sorted canonical JSONL at any --jobs count. *)
             let produce feed =
               match workload_spec with
               | Some spec -> Service.Workload.iter spec ~f:feed
               | None -> (
                   match
                     Service.Manifest.iter_file (Option.get manifest) ~f:feed
                   with
                   | Ok () -> ()
                   | Error e -> raise (Stream_input e))
             in
             let probe_stats =
               Service.Cert_store.stats (Service.Engine.store first_engine)
             in
             for pass = 1 to passes do
               if not quiet && passes > 1 then
                 Printf.printf "--- pass %d/%d %s\n" pass passes
                   (if pass = 1 then "(cold)"
                    else "(warm via shared disk tier)");
               let outcome =
                 Service.Pool.run_stream ~emit ~timing ~workers ~make_engine
                   ?on_interrupt:
                     (Option.map
                        (fun dir () ->
                          ignore (Service.Pool.sweep_tmp_files dir : int))
                        cache_dir)
                   produce
               in
               Format.printf "%a@." Service.Stats.pp_summary
                 outcome.Service.Pool.stream_summary;
               let stats =
                 if pass = 1 then
                   Service.Cert_store.add_stats probe_stats
                     outcome.Service.Pool.stream_store
                 else outcome.Service.Pool.stream_store
               in
               last_store := Some (stats, outcome.Service.Pool.stream_degraded)
             done
       with
       | Service.Blob_io.Crashed p ->
           Printf.eprintf "certd: simulated crash (fault plan) at %s\n" p;
           finish 3
       | Stream_input e ->
           Printf.eprintf "certd: %s\n" e;
           finish 2);
      finish (if !failed then 1 else 0)

open Cmdliner

let manifest =
  Arg.(
    value
    & opt (some string) None
    & info [ "manifest" ] ~docv:"FILE"
        ~doc:"Manifest file listing certification jobs (see lib/service).")

let base_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "base-dir" ] ~docv:"DIR"
        ~doc:
          "Directory that file= paths in the manifest resolve against \
           (default: the manifest's directory).")

let cache_cap =
  Arg.(
    value & opt int 4096
    & info [ "cache-cap" ] ~docv:"N"
        ~doc:"In-memory LRU capacity of the certificate store.")

let cache_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist encoded certificate bundles here; entries survive \
           restarts and LRU eviction. Served bundles are always \
           re-verified locally first.")

let disk_cap =
  Arg.(
    value & opt int 0
    & info [ "disk-cap" ] ~docv:"N"
        ~doc:
          "Cap the on-disk certificate tier at $(docv) records; the \
           least-recently-used records (by mtime) are garbage-collected \
           past the cap. 0 means unbounded.")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"PLAN"
        ~doc:
          "Inject storage faults (testing/drills). $(docv) is a \
           comma-separated list over the sequence of mutating file ops: \
           fail@N[:TAG] (op N raises, e.g. ENOSPC; N+ makes it \
           persistent), torn@N:B (write truncated at byte B, then \
           crash), flip@N:B (silent bit flip at bit B), crash@N \
           (process death before op N; certd exits 3).")

let jsonl =
  Arg.(
    value
    & opt (some string) None
    & info [ "jsonl" ] ~docv:"FILE"
        ~doc:"Write one JSON object per job to $(docv) ('-' for stdout).")

let canonical =
  Arg.(
    value & flag
    & info [ "canonical" ]
        ~doc:
          "Emit the canonical projection in --jsonl lines: volatile fields \
           (timings, fresh-vs-cached serving detail) dropped, so two runs of \
           one manifest are byte-comparable however they were sharded.")

let passes =
  Arg.(
    value & opt int 1
    & info [ "passes" ] ~docv:"P"
        ~doc:
          "Run the whole manifest $(docv) times against the same store \
           (pass 2+ measures the warm cache).")

let njobs =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Shard the manifest across $(docv) worker processes (stable \
           hash of job id). Each worker has a private in-memory cache \
           tier; all workers share the --cache-dir disk tier. Output is \
           merged in canonical job-id order. 0 (the default) means the \
           machine's core count.")

let quiet =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress per-job progress lines.")

let list_props =
  Arg.(
    value & flag
    & info [ "list-properties" ]
        ~doc:"Print the property catalogue and graph formats, then exit.")

let connect =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCKET"
        ~doc:
          "Client mode: submit the manifest's jobs to the certd-server \
           daemon listening on the unix-domain socket $(docv) instead of \
           running them in-process. Output and exit codes match batch mode.")

let window =
  Arg.(
    value & opt int 16
    & info [ "window" ] ~docv:"N"
        ~doc:
          "With --connect: keep at most $(docv) submissions unanswered at \
           a time.")

let deadline_ms =
  Arg.(
    value & opt float 0.0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "With --connect: per-job deadline budget the daemon's retry \
           policy must respect. 0 means the daemon's default.")

let server_stats =
  Arg.(
    value & flag
    & info [ "server-stats" ]
        ~doc:
          "With --connect: print the daemon's live statistics (queue, \
           workers, store, stage percentiles) as JSON and exit.")

let server_shutdown =
  Arg.(
    value & flag
    & info [ "server-shutdown" ]
        ~doc:
          "With --connect: ask the daemon to drain its queue and exit, as \
           SIGTERM would.")

let edits =
  Arg.(
    value
    & opt (some string) None
    & info [ "edits" ] ~docv:"FILE"
        ~doc:
          "With --connect: streaming edit mode. Open a daemon-side delta \
           session on the manifest's single job, then apply $(docv) one \
           line at a time (each line an edit batch like \
           'add=0-1,2-3 del=4-5'; blank lines and #-comments skipped). \
           Each step is re-certified incrementally and re-verified before \
           it is served; replies stream back in edit order.")

let edits_full =
  Arg.(
    value & flag
    & info [ "edits-full" ]
        ~doc:
          "With --edits: force a from-scratch recompute at every step \
           (same representation policy, no splice) — the differential \
           anchor whose canonical JSONL must match the incremental run \
           byte for byte.")

let session =
  Arg.(
    value
    & opt (some string) None
    & info [ "session" ] ~docv:"SID"
        ~doc:
          "With --edits: the session id used to resume the edit stream \
           against a journal-backed daemon after a crash or disconnect \
           (default: a fresh id derived from this process).")

let stream =
  Arg.(
    value & flag
    & info [ "stream" ]
        ~doc:
          "Batch mode: stream the manifest through the engine in constant \
           memory — jobs are parsed, run, and reported one at a time, never \
           materialized as a list, so corpus size is bounded by disk, not \
           RAM. Reports are emitted in manifest order (the batch default \
           sorts by job id; the two agree whenever the manifest is \
           id-sorted, e.g. any --workload stream). Implied by --workload.")

let workload =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload" ] ~docv:"SPEC"
        ~doc:
          "Generate the job stream instead of reading a manifest: \
           Zipf-distributed popularity over a hot universe with seeded \
           cold/corrupt adversarial mixes, e.g. \
           'zipf:u=2000,t=1000000,s=1.05,seed=42,cold=0.01,corrupt=0.002'. \
           Deterministic in the spec; exclusive with --manifest.")

let write_batch =
  Arg.(
    value & opt int 1
    & info [ "write-batch" ] ~docv:"B"
        ~doc:
          "Group-commit the certificate store's disk writes: pool up to \
           $(docv) new records and write them in one burst with a single \
           directory fsync per batch (1, the default, writes through). A \
           crash loses at most the unflushed tail — future cache misses, \
           never corruption.")

let cmd =
  let doc = "batch certification service driver (cached Theorem 1 pipeline)" in
  Cmd.v
    (Cmd.info "certd" ~doc)
    Term.(
      const run $ manifest $ base_dir $ cache_cap $ cache_dir $ disk_cap
      $ faults $ jsonl $ canonical $ passes $ njobs $ quiet $ list_props
      $ connect $ window $ deadline_ms $ server_stats $ server_shutdown
      $ edits $ edits_full $ session $ stream $ workload $ write_batch)

let () = exit (Cmd.eval cmd)

(* Command-line driver: build a graph, run the Theorem 1 prover for a
   chosen MSO₂ property, simulate distributed verification, and report
   proof sizes — with optional adversarial corruption to watch the
   verifier reject.

   Examples:
     certify.exe --family cycle -n 30 --property connected
     certify.exe --family random -n 60 -k 2 --property bipartite --corrupt
     certify.exe --family caterpillar -n 24 --property acyclic --scheme fmr
     certify.exe --input graphs/net.g6 -k 2 --property connected *)

module G = Lcp_graph.Graph
module Gen = Lcp_graph.Gen
module Rep = Lcp_interval.Representation
module PW = Lcp_interval.Pathwidth
module PLS = Lcp_pls
module S = PLS.Scheme
module EM = S.Edge_map
module A = Lcp_algebra
module Cert = Lcp_cert.Certificate

let make_generated family n k seed =
  let rng = Random.State.make [| seed |] in
  match family with
  | "path" -> (Gen.path n, None, 1)
  | "cycle" -> (Gen.cycle n, None, 2)
  | "caterpillar" -> (Gen.caterpillar ~spine:(max 1 (n / 3)) ~legs:2, None, 1)
  | "ladder" -> (Gen.ladder (max 2 (n / 2)), None, 2)
  | "star" -> (Gen.star (max 1 (n - 1)), None, 1)
  | "random" ->
      let g, ivs = Gen.random_pathwidth rng ~n ~k () in
      (g, Some (Rep.of_pairs g ivs), k)
  | f ->
      Printf.eprintf "unknown family %S\n" f;
      exit 2

let make_graph input family n k seed =
  match input with
  | None -> make_generated family n k seed
  | Some file -> (
      match Lcp_service.Graph_io.load_file file with
      | Ok g ->
          (* no promised bound comes with a file: if the user gave none,
             derive one from an interval representation of the graph *)
          let default_k =
            if k > 0 then k
            else
              max 1
                (Lcp_interval.Representation.width
                   (if G.n g <= 20 then PW.exact_interval_representation g
                    else PW.heuristic_interval_representation g)
                - 1)
          in
          (g, None, default_k)
      | Error e ->
          let formats = Lcp_service.Graph_io.supported_formats_doc () in
          let already_listed =
            (* the unknown-extension error already names the formats *)
            let rec mem i =
              i + 10 <= String.length e && (String.sub e i 10 = "supported:" || mem (i + 1))
            in
            mem 0
          in
          Printf.eprintf "%s\n%s" e
            (if already_listed then ""
             else Printf.sprintf "supported formats: %s\n" formats);
          exit 2)

let report_edge_scheme name scheme cfg ~corrupt rng =
  match scheme.S.es_prove cfg with
  | None ->
      Printf.printf "prover: DECLINED (the property does not hold)\n";
      `Declined
  | Some labels ->
      Printf.printf "prover: certificate assigned to %d edges\n"
        (EM.cardinal labels);
      Printf.printf "proof size: max %d bits per edge label\n"
        (S.max_edge_label_bits scheme labels);
      let labels =
        if not corrupt then labels
        else begin
          let bindings = EM.bindings labels in
          let e, l =
            List.nth bindings (Random.State.int rng (List.length bindings))
          in
          Printf.printf "corrupting the label of edge %d-%d ...\n" (fst e)
            (snd e);
          EM.add labels e
            {
              l with
              Cert.global_ptr =
                {
                  l.Cert.global_ptr with
                  PLS.Spanning_tree.target =
                    l.Cert.global_ptr.PLS.Spanning_tree.target + 1;
                };
            }
        end
      in
      (match S.run_edge cfg scheme labels with
      | S.Accepted ->
          Printf.printf "verification (%s): ALL %d VERTICES ACCEPT\n" name
            (PLS.Config.n cfg);
          `Accepted
      | S.Rejected rs ->
          Printf.printf "verification (%s): %d vertex(es) REJECT\n" name
            (List.length rs);
          List.iteri
            (fun i (v, reason) ->
              if i < 5 then Printf.printf "  vertex %d: %s\n" v reason)
            rs;
          `Rejected)

let run input family n k property strategy scheme_kind seed corrupt =
  let g, rep, default_k = make_graph input family n k seed in
  let k = if k > 0 then k else default_k in
  let rng = Random.State.make [| seed + 1 |] in
  let cfg = PLS.Config.random_ids rng g in
  Printf.printf "graph: %s n=%d m=%d, promised pathwidth <= %d\n"
    (match input with
    | Some f -> Printf.sprintf "input=%s" f
    | None -> Printf.sprintf "family=%s" family)
    (G.n g) (G.m g) k;
  let rep_fn =
    match rep with
    | Some r -> fun _ -> Some r
    | None ->
        fun c ->
          let g = PLS.Config.graph c in
          if G.n g <= 20 then Some (PW.exact_interval_representation g)
          else Some (PW.heuristic_interval_representation g)
  in
  let strategy = if strategy = "greedy" then `Greedy else `Prop46 in
  let outcome =
    if scheme_kind = "fmr" then begin
      let report name scheme =
        match scheme.S.vs_prove cfg with
        | None ->
            Printf.printf "prover: DECLINED (the property does not hold)\n";
            `Declined
        | Some labels ->
            Printf.printf "proof size: max %d bits per vertex label\n"
              (S.max_vertex_label_bits scheme labels);
            (match S.run_vertex cfg scheme labels with
            | S.Accepted ->
                Printf.printf "verification (%s): ALL VERTICES ACCEPT\n" name;
                `Accepted
            | S.Rejected rs ->
                Printf.printf "verification (%s): %d vertices reject\n" name
                  (List.length rs);
                `Rejected)
      in
      match property with
      | "connected" ->
          let module F = Lcp_cert.Baseline_fmr.Make (A.Connectivity) in
          report "fmr/connected" (F.scheme ~rep:rep_fn ~k ())
      | "acyclic" ->
          let module F = Lcp_cert.Baseline_fmr.Make (A.Acyclicity) in
          report "fmr/acyclic" (F.scheme ~rep:rep_fn ~k ())
      | "bipartite" ->
          let module F = Lcp_cert.Baseline_fmr.Make (A.Bipartite) in
          report "fmr/bipartite" (F.scheme ~rep:rep_fn ~k ())
      | p ->
          Printf.eprintf "fmr scheme supports connected|acyclic|bipartite, not %S\n" p;
          exit 2
    end
    else begin
      let run_alg (type s) (module Alg : A.Algebra_sig.S with type state = s) =
        let module T1 = Lcp_cert.Theorem1.Make (Alg) in
        report_edge_scheme
          (Printf.sprintf "theorem1/%s" Alg.name)
          (T1.edge_scheme ~strategy ~rep:rep_fn ~k ())
          cfg ~corrupt rng
      in
      match property with
      | "connected" -> run_alg (module A.Connectivity)
      | "acyclic" -> run_alg (module A.Acyclicity)
      | "bipartite" -> run_alg (module A.Bipartite)
      | "is_path" -> run_alg (module A.Combinators.Is_path_graph)
      | "is_cycle" -> run_alg (module A.Combinators.Is_cycle_graph)
      | "triangle_free" -> run_alg (module A.Triangle_free)
      | "perfect_matching" -> run_alg (module A.Matching)
      | "hamiltonian_path" -> run_alg (module A.Hamiltonian.Path_alg)
      | p ->
          Printf.eprintf "unknown property %S\n" p;
          exit 2
    end
  in
  match outcome with
  | `Accepted -> exit 0
  | `Declined -> exit 1
  | `Rejected -> exit (if corrupt then 0 else 1)

open Cmdliner

let input =
  Arg.(
    value
    & opt (some string) None
    & info [ "input" ] ~docv:"FILE"
        ~doc:
          "Certify the graph in $(docv) instead of a generated family. \
           The format is inferred from the extension: .dimacs/.col \
           (DIMACS edge list), .g6 (graph6), .adj/.lcp (native \
           adjacency lists).")

let family =
  Arg.(
    value
    & opt string "cycle"
    & info [ "family" ] ~docv:"FAMILY"
        ~doc:"Graph family: path, cycle, caterpillar, ladder, star, random.")

let n =
  Arg.(value & opt int 24 & info [ "n" ] ~docv:"N" ~doc:"Number of vertices.")

let k =
  Arg.(
    value
    & opt int 0
    & info [ "k" ]
        ~doc:"Promised pathwidth bound (0 = family default).")

let property =
  Arg.(
    value
    & opt string "connected"
    & info [ "property" ] ~docv:"PROP"
        ~doc:
          "MSO2 property: connected, acyclic, bipartite, is_path, is_cycle, \
           triangle_free, perfect_matching, hamiltonian_path.")

let strategy =
  Arg.(
    value
    & opt string "prop46"
    & info [ "strategy" ]
        ~doc:"Lane partition strategy: prop46 (default) or greedy.")

let scheme_kind =
  Arg.(
    value
    & opt string "theorem1"
    & info [ "scheme" ] ~doc:"Scheme: theorem1 (default) or fmr baseline.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let corrupt =
  Arg.(
    value & flag
    & info [ "corrupt" ]
        ~doc:"Corrupt one label after proving, to watch the rejection.")

let cmd =
  let doc = "certify an MSO2 property on a bounded-pathwidth network" in
  Cmd.v
    (Cmd.info "certify" ~doc)
    Term.(
      const run $ input $ family $ n $ k $ property $ strategy $ scheme_kind
      $ seed $ corrupt)

let () = exit (Cmd.eval cmd)

#!/bin/sh
# Install the repo's git hooks. Currently one hook: pre-push runs the
# tier-1 gate (scripts/check.sh: build + full test suite, including the
# storage-recovery campaign) so a broken tree never leaves the machine.
#
# Usage: scripts/install-hooks.sh
# Re-running is safe; an existing pre-push hook is backed up once to
# pre-push.local before being replaced.
set -eu

cd "$(dirname "$0")/.."

hooks_dir=$(git rev-parse --git-path hooks)
mkdir -p "$hooks_dir"

hook="$hooks_dir/pre-push"
if [ -e "$hook" ] && ! grep -q 'scripts/check.sh' "$hook" 2>/dev/null; then
  mv "$hook" "$hook.local"
  echo "install-hooks: existing pre-push saved as pre-push.local"
fi

cat >"$hook" <<'EOF'
#!/bin/sh
# Installed by scripts/install-hooks.sh — tier-1 gate before every push.
exec "$(git rev-parse --show-toplevel)/scripts/check.sh"
EOF
chmod +x "$hook"

echo "install-hooks: pre-push -> scripts/check.sh installed in $hooks_dir"

#!/bin/sh
# Tier-1 gate: refuse tracked build artifacts, then build and run the
# full test suite. CI and pre-push hooks call this; it exits non-zero
# on the first failure.
set -eu

cd "$(dirname "$0")/.."

tracked_build=$(git ls-files | grep '^_build/' || true)
if [ -n "$tracked_build" ]; then
  echo "check.sh: build artifacts are tracked by git:" >&2
  echo "$tracked_build" | head -5 >&2
  echo "check.sh: run 'git rm -r --cached _build' (see .gitignore)" >&2
  exit 1
fi

dune build
dune runtest

# differential oracle: Theorem 1 vs the FMR baseline, >= 500 instances
dune build @difftest

# packed-state differential suite: unpack.pack = id per algebra, packed
# memo vs reference compose, hash audit, exact memo semantics
# (see test/test_packed.ml)
dune build @packed

# sharded pool: a 2-worker smoke run of the example manifest must exit 0
# and agree with the sequential run on the canonical JSONL
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
./_build/default/bin/certd.exe --manifest examples/service/jobs.manifest \
  --jobs 1 --cache-dir "$tmp/c1" --jsonl "$tmp/j1" --canonical --quiet
./_build/default/bin/certd.exe --manifest examples/service/jobs.manifest \
  --jobs 2 --cache-dir "$tmp/c2" --jsonl "$tmp/j2" --canonical --quiet
if ! cmp -s "$tmp/j1" "$tmp/j2"; then
  echo "check.sh: certd --jobs 1 and --jobs 2 disagree on the JSONL" >&2
  diff "$tmp/j1" "$tmp/j2" >&2 || true
  exit 1
fi

# daemon smoke test: a certd-server on a tmp socket must serve 3 jobs
# submitted via `certd --connect`, the canonical JSONL must be
# byte-identical to batch mode, and SIGTERM must drain cleanly (exit 0,
# socket unlinked)
cat > "$tmp/daemon.manifest" <<EOF
id=ring file=$PWD/examples/service/ring.dimacs property=connected k=2 seed=1
id=tree16 gen=tree n=16 gseed=4 property=acyclic k=3
id=match12 gen=path n=12 property=perfect_matching k=1
EOF
./_build/default/bin/certd.exe --manifest "$tmp/daemon.manifest" \
  --jobs 1 --jsonl "$tmp/batch.jsonl" --canonical --quiet
./_build/default/bin/certd_server.exe --socket "$tmp/certd.sock" \
  --workers 2 --quiet &
server_pid=$!
i=0
until [ -S "$tmp/certd.sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "check.sh: certd-server did not come up within 10s" >&2
    kill -KILL "$server_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
./_build/default/bin/certd.exe --manifest "$tmp/daemon.manifest" \
  --connect "$tmp/certd.sock" --jsonl "$tmp/daemon.jsonl" --canonical --quiet
if ! cmp -s "$tmp/batch.jsonl" "$tmp/daemon.jsonl"; then
  echo "check.sh: daemon and batch mode disagree on the canonical JSONL" >&2
  diff "$tmp/batch.jsonl" "$tmp/daemon.jsonl" >&2 || true
  kill -KILL "$server_pid" 2>/dev/null || true
  exit 1
fi
kill -TERM "$server_pid"
if ! wait "$server_pid"; then
  echo "check.sh: certd-server did not exit 0 on SIGTERM" >&2
  exit 1
fi
if [ -e "$tmp/certd.sock" ]; then
  echo "check.sh: certd-server left its socket behind" >&2
  exit 1
fi

# incremental differential gate: >= 500 random edit batches across
# >= 3 families and >= 3 properties, every step byte-compared against
# a forced from-scratch session (see test/test_incr.ml)
dune build @incr

# daemon edit-stream smoke: the same edit stream served once
# incrementally (--edits) and once forced-full (--edits-full) against
# one daemon must produce byte-identical canonical JSONL
cat > "$tmp/dyn.manifest" <<EOF
id=dyn gen=path n=24 property=connected k=2 seed=7
EOF
cat > "$tmp/dyn.edits" <<EOF
add=0-5,3-9
del=3-9
add=3-9 del=0-5
add=0-5
del=0-5 add=7-12
EOF
./_build/default/bin/certd_server.exe --socket "$tmp/dyn.sock" \
  --workers 1 --quiet &
dyn_pid=$!
i=0
until [ -S "$tmp/dyn.sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "check.sh: certd-server (edit smoke) did not come up within 10s" >&2
    kill -KILL "$dyn_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
./_build/default/bin/certd.exe --manifest "$tmp/dyn.manifest" \
  --connect "$tmp/dyn.sock" --edits "$tmp/dyn.edits" \
  --jsonl "$tmp/dyn-incr.jsonl" --canonical --quiet
./_build/default/bin/certd.exe --manifest "$tmp/dyn.manifest" \
  --connect "$tmp/dyn.sock" --edits "$tmp/dyn.edits" --edits-full \
  --jsonl "$tmp/dyn-full.jsonl" --canonical --quiet
if ! cmp -s "$tmp/dyn-incr.jsonl" "$tmp/dyn-full.jsonl"; then
  echo "check.sh: incremental and forced-full edit streams disagree" >&2
  diff "$tmp/dyn-incr.jsonl" "$tmp/dyn-full.jsonl" >&2 || true
  kill -KILL "$dyn_pid" 2>/dev/null || true
  exit 1
fi
kill -TERM "$dyn_pid"
wait "$dyn_pid" || true

# E13 quick campaign: delta sessions vs from-scratch reproof on
# n=1024 edit streams; fails on any verdict divergence
./_build/default/bench/main.exe incr quick

# E12 quick chaos drill: the daemon under fault-injected concurrent
# clients — backpressure, crash/respawn, degraded serving, clean drain
./_build/default/bench/main.exe chaos quick

# E16 + E10 quick sweep: streaming corpus (10^4 jobs under a heap
# budget, canonical digests equal across batch / streamed N in {1,2} /
# file replay, filter counters live) then pool determinism on the
# bench corpus (< 30 s total)
./_build/default/bench/main.exe scale quick

# E11 perf gate: hot-path microbenchmarks vs the committed BENCH_PERF.json
# baseline (allocation counts and speedup ratios are gated tightly;
# ns/op only against a catastrophic backstop — see EXPERIMENTS.md E11).
# After a deliberate perf change, refresh the baseline with
# `./_build/default/bench/main.exe perf update` and commit BENCH_PERF.json.
./_build/default/bench/main.exe perf quick

# crash-recovery smoke: a supervised, journaled daemon is SIGKILLed
# mid edit-stream. The supervisor must respawn it, the client must
# reconnect and resume its session, and the canonical JSONL must be
# byte-identical to an uninterrupted run of the same stream. The kill
# is timed off journal growth, so on a fast machine it can land after
# the stream already ended — retry a few times and require at least
# one observed resume.
: > "$tmp/crash.edits"
i=0
while [ "$i" -lt 150 ]; do
  printf 'add=0-5,3-9\ndel=3-9\nadd=3-9 del=0-5\nadd=0-5\ndel=0-5 add=7-12\n' \
    >> "$tmp/crash.edits"
  i=$((i + 5))
done
./_build/default/bin/certd_server.exe --socket "$tmp/kill.sock" \
  --workers 1 --quiet --supervise --journal-dir "$tmp/kill-journal" \
  --fsync always --checkpoint-every 100000 &
sup_pid=$!
i=0
until [ -S "$tmp/kill.sock" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "check.sh: supervised certd-server did not come up within 10s" >&2
    kill -KILL "$sup_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done
./_build/default/bin/certd.exe --manifest "$tmp/dyn.manifest" \
  --connect "$tmp/kill.sock" --edits "$tmp/crash.edits" \
  --session smoke-base --jsonl "$tmp/kill-base.jsonl" --canonical --quiet
resumed=0
attempt=0
while [ "$attempt" -lt 5 ]; do
  attempt=$((attempt + 1))
  before=$(wc -c < "$tmp/kill-journal/journal.log")
  ./_build/default/bin/certd.exe --manifest "$tmp/dyn.manifest" \
    --connect "$tmp/kill.sock" --edits "$tmp/crash.edits" \
    --session "smoke-kill$attempt" --jsonl "$tmp/kill-run.jsonl" \
    --canonical --quiet 2> "$tmp/kill-client.err" &
  client_pid=$!
  j=0
  while :; do
    now=$(wc -c < "$tmp/kill-journal/journal.log" 2>/dev/null || echo "$before")
    if [ "$now" -gt $((before + 2000)) ]; then break; fi
    if ! kill -0 "$client_pid" 2>/dev/null; then break; fi
    j=$((j + 1))
    if [ "$j" -gt 200 ]; then break; fi
    sleep 0.02
  done
  kill -KILL "$(cat "$tmp/kill.sock.pid")" 2>/dev/null || true
  if ! wait "$client_pid"; then
    echo "check.sh: edit-stream client failed across the daemon kill" >&2
    cat "$tmp/kill-client.err" >&2
    kill -KILL "$sup_pid" 2>/dev/null || true
    exit 1
  fi
  if ! cmp -s "$tmp/kill-base.jsonl" "$tmp/kill-run.jsonl"; then
    echo "check.sh: resumed edit stream diverged from the clean run" >&2
    diff "$tmp/kill-base.jsonl" "$tmp/kill-run.jsonl" >&2 || true
    kill -KILL "$sup_pid" 2>/dev/null || true
    exit 1
  fi
  if grep -q "resumed" "$tmp/kill-client.err"; then
    resumed=1
    break
  fi
done
if [ "$resumed" -ne 1 ]; then
  echo "check.sh: SIGKILL never landed mid-stream (no resume observed)" >&2
  kill -KILL "$sup_pid" 2>/dev/null || true
  exit 1
fi
kill -TERM "$sup_pid"
if ! wait "$sup_pid"; then
  echo "check.sh: supervised certd-server did not exit 0 on SIGTERM" >&2
  exit 1
fi

# E14 quick crash campaign: randomized SIGKILLs during streaming edit
# sessions; resumed streams must stay byte-identical with zero unsound
# serves (see bench/main.ml e14_crash)
./_build/default/bench/main.exe crash quick

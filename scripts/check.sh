#!/bin/sh
# Tier-1 gate: refuse tracked build artifacts, then build and run the
# full test suite. CI and pre-push hooks call this; it exits non-zero
# on the first failure.
set -eu

cd "$(dirname "$0")/.."

tracked_build=$(git ls-files | grep '^_build/' || true)
if [ -n "$tracked_build" ]; then
  echo "check.sh: build artifacts are tracked by git:" >&2
  echo "$tracked_build" | head -5 >&2
  echo "check.sh: run 'git rm -r --cached _build' (see .gitignore)" >&2
  exit 1
fi

dune build
dune runtest

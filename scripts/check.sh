#!/bin/sh
# Tier-1 gate: refuse tracked build artifacts, then build and run the
# full test suite. CI and pre-push hooks call this; it exits non-zero
# on the first failure.
set -eu

cd "$(dirname "$0")/.."

tracked_build=$(git ls-files | grep '^_build/' || true)
if [ -n "$tracked_build" ]; then
  echo "check.sh: build artifacts are tracked by git:" >&2
  echo "$tracked_build" | head -5 >&2
  echo "check.sh: run 'git rm -r --cached _build' (see .gitignore)" >&2
  exit 1
fi

dune build
dune runtest

# differential oracle: Theorem 1 vs the FMR baseline, >= 500 instances
dune build @difftest

# sharded pool: a 2-worker smoke run of the example manifest must exit 0
# and agree with the sequential run on the canonical JSONL
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
./_build/default/bin/certd.exe --manifest examples/service/jobs.manifest \
  --jobs 1 --cache-dir "$tmp/c1" --jsonl "$tmp/j1" --canonical --quiet
./_build/default/bin/certd.exe --manifest examples/service/jobs.manifest \
  --jobs 2 --cache-dir "$tmp/c2" --jsonl "$tmp/j2" --canonical --quiet
if ! cmp -s "$tmp/j1" "$tmp/j2"; then
  echo "check.sh: certd --jobs 1 and --jobs 2 disagree on the JSONL" >&2
  diff "$tmp/j1" "$tmp/j2" >&2 || true
  exit 1
fi

# E10 quick sweep: pool determinism on the bench corpus (< 30 s)
./_build/default/bench/main.exe scale quick

# E11 perf gate: hot-path microbenchmarks vs the committed BENCH_PERF.json
# baseline (allocation counts and speedup ratios are gated tightly;
# ns/op only against a catastrophic backstop — see EXPERIMENTS.md E11).
# After a deliberate perf change, refresh the baseline with
# `./_build/default/bench/main.exe perf update` and commit BENCH_PERF.json.
./_build/default/bench/main.exe perf quick
